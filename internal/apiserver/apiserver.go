// Package apiserver exposes a trained DarkVec model over HTTP so the
// embedding can back dashboards and SOC tooling: nearest-neighbour pivots,
// on-demand classification, cluster summaries and dataset statistics. The
// handlers are plain net/http with JSON responses and are safe for
// concurrent use (the underlying model is immutable once served). Every
// server is hardened by default: panics become 500s, requests are bounded
// by a per-request timeout, and excess concurrency is shed with 503s.
package apiserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/darkvec/darkvec/internal/cluster"
	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/embed"
	"github.com/darkvec/darkvec/internal/knn"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/robust"
	"github.com/darkvec/darkvec/internal/trace"
)

// Serving-hardening defaults; override via Config.
const (
	DefaultRequestTimeout = 10 * time.Second
	DefaultMaxInFlight    = 256
)

// Server wires a trained model and its context into an http.Handler.
type Server struct {
	space    *embed.Space
	labels   map[string]string
	profiles []cluster.Profile
	assign   []int
	stats    trace.Stats
	version  string // model generation serving this instance, "" when unmanaged
	annErr   string // why the ANN index is absent, "" when built or not requested
	retrain  *RetrainInfo
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in the hardening middleware
}

// RetrainInfo describes how the serving generation was trained: from a
// warm seed (the previous generation's vectors plus a delta-sized epoch
// budget) or cold from scratch, how long the cycle's training took, and
// how many epochs actually ran. WarmFallback carries the reason when a
// warm start was requested but the cycle fell back to cold.
type RetrainInfo struct {
	Mode         string  `json:"mode"` // "warm" | "cold"
	DurationSecs float64 `json:"duration_s"`
	Epochs       int     `json:"epochs"`
	WarmFallback string  `json:"warm_fallback,omitempty"`
}

// Config assembles a Server.
type Config struct {
	Space *embed.Space
	GT    *labels.Set
	Trace *trace.Trace
	// KPrime controls the clustering exposed at /clusters (default 3).
	KPrime int
	// Seed for the clustering pass.
	Seed uint64
	// RequestTimeout bounds each request (default DefaultRequestTimeout;
	// negative disables).
	RequestTimeout time.Duration
	// MaxInFlight caps concurrent requests, shedding the excess with 503
	// (default DefaultMaxInFlight; negative disables).
	MaxInFlight int
	// Logf, when non-nil, receives recovered handler panics.
	Logf func(format string, args ...any)
	// ModelVersion, when non-empty, is stamped on every response as
	// X-DarkVec-Model-Version so operators can tell which store generation
	// answered (and watch a retrain roll through a fleet).
	ModelVersion string
	// ANNError records why the approximate index is absent when one was
	// requested (build failure → exact fallback). Surfaced on /v1/model so
	// operators can see the degradation without reading the daemon log.
	ANNError string
	// Retrain, when non-nil, reports how this generation was trained
	// (warm vs cold, duration, epochs) on /v1/model.
	Retrain *RetrainInfo
}

// Harden wraps h in the serving middleware stack: panic recovery
// outermost, then load shedding, then the per-request timeout. New applies
// it to every Server; exposed so daemons and tests can harden auxiliary
// handlers with the exact same chain.
func Harden(h http.Handler, timeout time.Duration, maxInFlight int, logf func(format string, args ...any)) http.Handler {
	h = robust.Timeout(h, timeout)
	h = robust.LimitInFlight(h, maxInFlight)
	var onPanic func(v any)
	if logf != nil {
		onPanic = func(v any) { logf("panic in handler: %v", v) }
	}
	return robust.Recover(h, onPanic)
}

// StaleHeader stamps X-DarkVec-Model-Stale: true (and, when stale returns
// a reason, X-DarkVec-Model-Stale-Reason) on every response while the
// predicate holds. Daemons use it to make degradation visible on the
// serving path itself — a failed retrain or a stalled live feed marks every
// answer, not just the health endpoint, so a client pivoting on month-old
// neighbours can tell. The predicate is evaluated per request, so the
// header clears the moment the daemon recovers.
func StaleHeader(h http.Handler, stale func() (bool, string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ok, reason := stale(); ok {
			w.Header().Set("X-DarkVec-Model-Stale", "true")
			if reason != "" {
				w.Header().Set("X-DarkVec-Model-Stale-Reason", reason)
			}
		}
		h.ServeHTTP(w, r)
	})
}

// New builds the server, running one clustering pass up front so /clusters
// is a cheap read.
func New(cfg Config) *Server {
	lbl := make(map[string]string, cfg.Space.Len())
	for _, w := range cfg.Space.Words {
		if ip, err := netutil.ParseIPv4(w); err == nil {
			lbl[w] = cfg.GT.Class(ip)
		}
	}
	kp := cfg.KPrime
	if kp <= 0 {
		kp = 3
	}
	s := &Server{
		space:   cfg.Space,
		labels:  lbl,
		stats:   cfg.Trace.Summary(3),
		version: cfg.ModelVersion,
		annErr:  cfg.ANNError,
		retrain: cfg.Retrain,
		mux:     http.NewServeMux(),
	}
	if cfg.Space.Len() > 1 {
		cl := core.Cluster(cfg.Space, kp, cfg.Seed)
		sil, err := cluster.Silhouette(cfg.Space, cl.Assign)
		if err != nil {
			// Cluster profiles are advisory; a space the metric refuses to
			// score still serves similarity and classification, it just
			// answers /v1/clusters with nothing.
			if cfg.Logf != nil {
				cfg.Logf("clusters unavailable: %v", err)
			}
		} else {
			s.assign = cl.Assign
			s.profiles = cluster.Inspect(cfg.Trace, cfg.Space.Words, cl.Assign, sil, lbl, labels.Unknown)
		}
	}
	s.routes()
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = DefaultMaxInFlight
	}
	s.handler = Harden(s.mux, timeout, maxInFlight, cfg.Logf)
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/similar", s.handleSimilar)
	s.mux.HandleFunc("GET /v1/classify", s.handleClassify)
	s.mux.HandleFunc("GET /v1/clusters", s.handleClusters)
	s.mux.HandleFunc("GET /v1/sender", s.handleSender)
	s.mux.HandleFunc("GET /v1/model", s.handleModel)
}

// ServeHTTP implements http.Handler, routing through the hardening chain.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.version != "" {
		w.Header().Set("X-DarkVec-Model-Version", s.version)
	}
	s.handler.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "senders": s.space.Len()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.stats)
}

// kParam parses ?k= with a default and sane bounds.
func kParam(r *http.Request, def int) int {
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k <= 0 || k > 100 {
		return def
	}
	return k
}

// ipParam validates ?ip=.
func ipParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	ipStr := r.URL.Query().Get("ip")
	if _, err := netutil.ParseIPv4(ipStr); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid or missing ip parameter: %v", err)
		return "", false
	}
	return ipStr, true
}

// SimilarResponse is the /v1/similar payload.
type SimilarResponse struct {
	IP        string         `json:"ip"`
	Neighbors []SimilarEntry `json:"neighbors"`
}

// SimilarEntry is one neighbour with its label.
type SimilarEntry struct {
	IP    string  `json:"ip"`
	Sim   float64 `json:"similarity"`
	Class string  `json:"class"`
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	ip, ok := ipParam(w, r)
	if !ok {
		return
	}
	// Rides the approximate index when one is attached to the space; falls
	// back to the exact engine transparently otherwise.
	sims, found := s.space.MostSimilarApprox(ip, kParam(r, 10))
	if !found {
		writeErr(w, http.StatusNotFound, "sender %s not in the embedding", ip)
		return
	}
	resp := SimilarResponse{IP: ip}
	for _, sim := range sims {
		resp.Neighbors = append(resp.Neighbors, SimilarEntry{
			IP: sim.Word, Sim: sim.Sim, Class: s.labels[sim.Word],
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ClassifyResponse is the /v1/classify payload.
type ClassifyResponse struct {
	IP      string  `json:"ip"`
	Class   string  `json:"class"`
	Known   string  `json:"known_label"`
	Support int     `json:"votes"`
	AvgSim  float64 `json:"avg_similarity"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	ip, ok := ipParam(w, r)
	if !ok {
		return
	}
	pred, found := knn.ClassifyOneIndexed(s.space, s.space.ANN(), s.labels, ip, kParam(r, 7))
	if !found {
		writeErr(w, http.StatusNotFound, "sender %s not in the embedding", ip)
		return
	}
	writeJSON(w, http.StatusOK, ClassifyResponse{
		IP: ip, Class: pred.Label, Known: pred.Truth,
		Support: pred.Support, AvgSim: pred.AvgSim,
	})
}

// ClusterEntry is one /v1/clusters row.
type ClusterEntry struct {
	Cluster     int     `json:"cluster"`
	Senders     int     `json:"senders"`
	Ports       int     `json:"ports"`
	Subnets24   int     `json:"subnets_24"`
	AvgSil      float64 `json:"avg_silhouette"`
	Dominant    string  `json:"dominant_class"`
	Description string  `json:"description"`
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	minSize, _ := strconv.Atoi(r.URL.Query().Get("min"))
	var out []ClusterEntry
	for _, p := range s.profiles {
		if len(p.Senders) < minSize {
			continue
		}
		out = append(out, ClusterEntry{
			Cluster: p.Cluster, Senders: len(p.Senders), Ports: p.Ports,
			Subnets24: p.Subnets24, AvgSil: p.AvgSil, Dominant: p.Dominant,
			Description: p.Describe(labels.Unknown),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Senders > out[j].Senders })
	writeJSON(w, http.StatusOK, out)
}

// ModelResponse is the /v1/model payload: which store generation is
// serving, how big the space is, and whether queries run exact or through
// the approximate index (with the index geometry and calibration when one
// is attached, and the degradation detail when a requested build failed).
type ModelResponse struct {
	Version     string          `json:"version,omitempty"`
	Senders     int             `json:"senders"`
	Dim         int             `json:"dim"`
	KNNMode     string          `json:"knn_mode"` // "ivf" | "exact"
	Index       *embed.IVFStats `json:"index,omitempty"`
	ANNError    string          `json:"ann_error,omitempty"`
	VectorBytes int64           `json:"vector_bytes"`
	Retrain     *RetrainInfo    `json:"retrain,omitempty"`
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	resp := ModelResponse{
		Version:     s.version,
		Senders:     s.space.Len(),
		Dim:         s.space.Dim,
		KNNMode:     "exact",
		ANNError:    s.annErr,
		VectorBytes: s.space.VectorBytes(),
		Retrain:     s.retrain,
	}
	if ix := s.space.ANN(); ix != nil {
		st := ix.Stats()
		resp.KNNMode = "ivf"
		resp.Index = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// SenderResponse is the /v1/sender payload.
type SenderResponse struct {
	IP      string `json:"ip"`
	Class   string `json:"class"`
	Cluster int    `json:"cluster"`
}

func (s *Server) handleSender(w http.ResponseWriter, r *http.Request) {
	ip, ok := ipParam(w, r)
	if !ok {
		return
	}
	row, found := s.space.Index(ip)
	if !found {
		writeErr(w, http.StatusNotFound, "sender %s not in the embedding", ip)
		return
	}
	resp := SenderResponse{IP: ip, Class: s.labels[ip], Cluster: -1}
	if row < len(s.assign) {
		resp.Cluster = s.assign[row]
	}
	writeJSON(w, http.StatusOK, resp)
}
