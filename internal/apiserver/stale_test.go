package apiserver

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/darkvec/darkvec/internal/stream"
)

func staleGet(t *testing.T, h http.Handler) *http.Response {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	return rec.Result()
}

func TestStaleHeaderSetsAndClears(t *testing.T) {
	var stale atomic.Bool
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h := StaleHeader(inner, func() (bool, string) { return stale.Load(), "feed silent" })

	if resp := staleGet(t, h); resp.Header.Get("X-DarkVec-Model-Stale") != "" {
		t.Error("healthy: staleness header present")
	}
	stale.Store(true)
	resp := staleGet(t, h)
	if resp.Header.Get("X-DarkVec-Model-Stale") != "true" {
		t.Error("stale: missing X-DarkVec-Model-Stale: true")
	}
	if resp.Header.Get("X-DarkVec-Model-Stale-Reason") != "feed silent" {
		t.Errorf("stale: reason header = %q", resp.Header.Get("X-DarkVec-Model-Stale-Reason"))
	}
	// The predicate is per-request: recovery clears the marker immediately.
	stale.Store(false)
	if resp := staleGet(t, h); resp.Header.Get("X-DarkVec-Model-Stale") != "" {
		t.Error("recovered: staleness header still present")
	}
}

func TestStaleHeaderNoReason(t *testing.T) {
	h := StaleHeader(http.NotFoundHandler(), func() (bool, string) { return true, "" })
	resp := staleGet(t, h)
	if resp.Header.Get("X-DarkVec-Model-Stale") != "true" {
		t.Error("missing staleness header")
	}
	if _, ok := resp.Header["X-Darkvec-Model-Stale-Reason"]; ok {
		t.Error("empty reason must not produce a reason header")
	}
}

// TestStaleHeaderEmptyWindowPredicate wires the middleware to a real (but
// empty) ingest window the way a live daemon does before its first
// training: no events is a degraded serving state worth marking.
func TestStaleHeaderEmptyWindowPredicate(t *testing.T) {
	w := stream.NewWindow(stream.WindowConfig{})
	h := StaleHeader(http.NotFoundHandler(), func() (bool, string) {
		if w.Len() == 0 {
			return true, "live window empty"
		}
		return false, ""
	})
	resp := staleGet(t, h)
	if resp.Header.Get("X-DarkVec-Model-Stale") != "true" {
		t.Error("empty window: missing staleness header")
	}
	if resp.Header.Get("X-DarkVec-Model-Stale-Reason") != "live window empty" {
		t.Errorf("reason = %q", resp.Header.Get("X-DarkVec-Model-Stale-Reason"))
	}
}

// TestStaleHeaderWatchdogPredicate drives the middleware from a real
// ingestor whose stall watchdog trips on a controllable clock — the exact
// degraded path a silent darknet feed produces.
func TestStaleHeaderWatchdogPredicate(t *testing.T) {
	var nowNano atomic.Int64
	nowNano.Store(time.Unix(1000, 0).UnixNano())
	ing := stream.New(stream.Config{
		StallAfter: time.Minute,
		Clock:      func() time.Time { return time.Unix(0, nowNano.Load()) },
	})
	defer ing.Close()
	h := StaleHeader(http.NotFoundHandler(), func() (bool, string) {
		if ing.Stalled() {
			return true, "ingest stalled"
		}
		return false, ""
	})
	if resp := staleGet(t, h); resp.Header.Get("X-DarkVec-Model-Stale") != "" {
		t.Error("fresh ingestor: staleness header present")
	}
	nowNano.Add(int64(2 * time.Minute))
	resp := staleGet(t, h)
	if resp.Header.Get("X-DarkVec-Model-Stale") != "true" {
		t.Error("tripped watchdog: missing staleness header")
	}
	if resp.Header.Get("X-DarkVec-Model-Stale-Reason") != "ingest stalled" {
		t.Errorf("reason = %q", resp.Header.Get("X-DarkVec-Model-Stale-Reason"))
	}
}
