package apiserver

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/darksim"
	"github.com/darkvec/darkvec/internal/embed"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/w2v"
)

// TestModelExact: a server over a plain space reports exact mode, the space
// geometry, and no index block.
func TestModelExact(t *testing.T) {
	srv, _ := server(t)
	var out ModelResponse
	getJSON(t, srv.URL+"/v1/model", http.StatusOK, &out)
	if out.KNNMode != "exact" {
		t.Fatalf("knn_mode = %q, want exact", out.KNNMode)
	}
	if out.Index != nil {
		t.Fatalf("unexpected index block: %+v", out.Index)
	}
	if out.Senders <= 0 || out.Dim != 16 {
		t.Fatalf("senders=%d dim=%d", out.Senders, out.Dim)
	}
	if out.VectorBytes != int64(out.Senders*out.Dim*4) {
		t.Fatalf("vector_bytes = %d", out.VectorBytes)
	}
}

// annServer builds a server whose space carries an IVF index, answering the
// tentpole's serving-side contract: /v1/model reports mode ivf + stats, and
// /v1/similar + /v1/classify ride the index.
func annServer(t *testing.T, annErr string, build bool) (*Server, *embed.Space) {
	t.Helper()
	out := darksim.Generate(darksim.Config{Seed: 9, Days: 4, Scale: 0.01, Rate: 0.05})
	cfg := core.DefaultConfig()
	cfg.W2V = w2v.Config{Dim: 16, Window: 8, Epochs: 2, Workers: 1, Seed: 1, ShrinkWindow: true, PadToken: "NULL"}
	emb, err := core.TrainEmbedding(out.Trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	space, _ := emb.EvalSpace(out.Trace.LastDays(1), nil)
	if build {
		if _, err := space.BuildIVF(embed.IVFOptions{Seed: 5, Quantized: true}); err != nil {
			t.Fatal(err)
		}
	}
	gt := labels.Build(out.Trace, out.Feeds)
	return New(Config{Space: space, GT: gt, Trace: out.Trace, Seed: 1, ANNError: annErr, ModelVersion: "g42"}), space
}

func TestModelWithIndex(t *testing.T) {
	s, space := annServer(t, "", true)
	srv := httptest.NewServer(s)
	defer srv.Close()

	var out ModelResponse
	getJSON(t, srv.URL+"/v1/model", http.StatusOK, &out)
	if out.KNNMode != "ivf" {
		t.Fatalf("knn_mode = %q, want ivf", out.KNNMode)
	}
	if out.Index == nil || out.Index.Rows != space.Len() || out.Index.Cells == 0 || out.Index.NProbe == 0 {
		t.Fatalf("index block = %+v", out.Index)
	}
	if !out.Index.Quantized || out.Index.QuantizedBytes == 0 {
		t.Fatalf("quantized sidecar not reported: %+v", out.Index)
	}
	if out.Index.CalibratedRecall < out.Index.TargetRecall {
		t.Fatalf("calibrated %.3f below target %.3f", out.Index.CalibratedRecall, out.Index.TargetRecall)
	}
	if out.Version != "g42" || out.ANNError != "" {
		t.Fatalf("version=%q ann_error=%q", out.Version, out.ANNError)
	}

	// Similar and classify keep answering through the index.
	ip := space.Words[0]
	var sim SimilarResponse
	getJSON(t, srv.URL+"/v1/similar?ip="+ip+"&k=5", http.StatusOK, &sim)
	if sim.IP != ip || len(sim.Neighbors) == 0 {
		t.Fatalf("similar over index: %+v", sim)
	}
	var cls ClassifyResponse
	getJSON(t, srv.URL+"/v1/classify?ip="+ip+"&k=5", http.StatusOK, &cls)
	if cls.Class == "" || cls.Support == 0 {
		t.Fatalf("classify over index degenerate: %+v", cls)
	}
}

// TestModelANNError: a failed index build serves exact with the failure
// visible on /v1/model — degradation, never refusal.
func TestModelANNError(t *testing.T) {
	s, space := annServer(t, "ivf build failed: synthetic", false)
	srv := httptest.NewServer(s)
	defer srv.Close()

	var out ModelResponse
	getJSON(t, srv.URL+"/v1/model", http.StatusOK, &out)
	if out.KNNMode != "exact" || out.Index != nil {
		t.Fatalf("degraded server should report exact: %+v", out)
	}
	if out.ANNError != "ivf build failed: synthetic" {
		t.Fatalf("ann_error = %q", out.ANNError)
	}
	// Queries still answer.
	var sim SimilarResponse
	getJSON(t, srv.URL+"/v1/similar?ip="+space.Words[0]+"&k=3", http.StatusOK, &sim)
	if len(sim.Neighbors) == 0 {
		t.Fatal("degraded server refused a similar query")
	}
}
