package apiserver

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHardenPanicRecovery hammers a panicking handler concurrently: every
// request must come back as a well-formed 500, the panic value must reach
// the log hook, and the server goroutines must survive (run under -race).
func TestHardenPanicRecovery(t *testing.T) {
	var logged atomic.Int64
	h := Harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("kaboom")
		}
		fmt.Fprint(w, "ok")
	}), time.Second, 64, func(format string, args ...any) { logged.Add(1) })
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 32; i++ {
		path, want := "/boom", http.StatusInternalServerError
		if i%2 == 0 {
			path, want = "/fine", http.StatusOK
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != want {
				errs <- fmt.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if logged.Load() != 16 {
		t.Fatalf("panic hook fired %d times, want 16", logged.Load())
	}
}

// TestHardenTimeout bounds a stuck handler.
func TestHardenTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	h := Harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}), 20*time.Millisecond, 0, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stuck handler status = %d, want 503", resp.StatusCode)
	}
}

// TestHardenShedsExcessLoad: with one slot occupied, a second request is
// rejected immediately with 503 instead of queueing.
func TestHardenShedsExcessLoad(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	h := Harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	}), 0, 1, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity status = %d, want 503", resp.StatusCode)
	}
	close(release)
	<-done
}

// TestServerDefaultsHardened: a Server built by New carries the chain — an
// unroutable burst larger than MaxInFlight sheds rather than piling up.
func TestServerDefaultsHardened(t *testing.T) {
	srv, _ := server(t)
	// The shared test server uses defaults; just confirm normal routes still
	// pass through the wrapped chain.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz through hardened chain = %d", resp.StatusCode)
	}
}
