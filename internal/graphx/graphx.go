// Package graphx provides the weighted graph type used by the unsupervised
// DarkVec stage (§7.1): a directed graph whose vertices are embedding rows,
// with each vertex linked to its k′ nearest neighbours, edge weight = cosine
// similarity.
package graphx

import (
	"fmt"

	"github.com/darkvec/darkvec/internal/embed"
)

// Edge is one directed, weighted edge.
type Edge struct {
	To     int
	Weight float64
}

// Graph is an adjacency-list directed graph with float64 weights.
type Graph struct {
	Out [][]Edge
}

// New returns an empty graph with n vertices.
func New(n int) *Graph { return &Graph{Out: make([][]Edge, n)} }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.Out) }

// AddEdge appends a directed edge u→v. It panics on out-of-range vertices;
// negative weights are rejected because modularity is undefined for them.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u < 0 || u >= len(g.Out) || v < 0 || v >= len(g.Out) {
		panic(fmt.Sprintf("graphx: edge (%d,%d) out of range [0,%d)", u, v, len(g.Out)))
	}
	if w < 0 {
		panic("graphx: negative edge weight")
	}
	g.Out[u] = append(g.Out[u], Edge{To: v, Weight: w})
}

// Edges returns the total number of directed edges.
func (g *Graph) Edges() int {
	n := 0
	for _, es := range g.Out {
		n += len(es)
	}
	return n
}

// TotalWeight returns the sum of all directed edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, es := range g.Out {
		for _, e := range es {
			s += e.Weight
		}
	}
	return s
}

// Undirected collapses the graph to a symmetric weighted graph: the weight
// between u and v is the sum of both directed weights. Self-loops are kept.
// Community detection operates on this view.
func (g *Graph) Undirected() *Graph {
	und := New(g.N())
	acc := make(map[int64]float64)
	key := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	for u, es := range g.Out {
		for _, e := range es {
			acc[key(u, e.To)] += e.Weight
		}
	}
	for k, w := range acc {
		u, v := int(k>>32), int(k&0xffffffff)
		und.Out[u] = append(und.Out[u], Edge{To: v, Weight: w})
		if u != v {
			und.Out[v] = append(und.Out[v], Edge{To: u, Weight: w})
		}
	}
	return und
}

// KNNGraph builds the paper's k′-NN graph over an embedding space: vertex i
// has a directed edge to each of its kPrime nearest neighbours, weighted by
// cosine similarity. Negative cosines are clamped to a tiny positive weight
// so the edge survives (the neighbour relation is what matters) without
// breaking modularity. The neighbour lists come from one batched AllKNN
// pass, so the search fans out across the space's Parallelism() workers;
// the resulting graph is identical for any worker count.
func KNNGraph(s *embed.Space, kPrime int) *Graph {
	g := New(s.Len())
	for i, nn := range s.AllKNN(kPrime) {
		for _, n := range nn {
			w := n.Sim
			if w <= 0 {
				w = 1e-9
			}
			g.AddEdge(i, n.Row, w)
		}
	}
	return g
}

// ConnectedComponents labels vertices of the undirected view of g with
// component ids (0-based, ordered by first-seen vertex).
func (g *Graph) ConnectedComponents() []int {
	und := g.Undirected()
	comp := make([]int, und.N())
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for v := range comp {
		if comp[v] != -1 {
			continue
		}
		stack = append(stack[:0], v)
		comp[v] = next
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range und.Out[u] {
				if comp[e.To] == -1 {
					comp[e.To] = next
					stack = append(stack, e.To)
				}
			}
		}
		next++
	}
	return comp
}
