package graphx

import (
	"math"
	"testing"

	"github.com/darkvec/darkvec/internal/embed"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 0.5)
	if g.Edges() != 1 {
		t.Fatalf("edges = %d", g.Edges())
	}
	mustPanic(t, func() { g.AddEdge(0, 5, 1) })
	mustPanic(t, func() { g.AddEdge(-1, 0, 1) })
	mustPanic(t, func() { g.AddEdge(0, 1, -1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestTotalWeight(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 0, 0.25)
	g.AddEdge(2, 2, 1)
	if got := g.TotalWeight(); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("total = %v", got)
	}
}

func TestUndirectedSumsBothDirections(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 0, 0.25)
	g.AddEdge(0, 2, 1)
	und := g.Undirected()
	// Edge 0-1 weight must be 0.75 in both adjacency lists.
	var w01, w10 float64
	for _, e := range und.Out[0] {
		if e.To == 1 {
			w01 = e.Weight
		}
	}
	for _, e := range und.Out[1] {
		if e.To == 0 {
			w10 = e.Weight
		}
	}
	if math.Abs(w01-0.75) > 1e-12 || math.Abs(w10-0.75) > 1e-12 {
		t.Fatalf("w01=%v w10=%v", w01, w10)
	}
	// Total undirected weight counts each pair twice (both directions).
	if got := und.TotalWeight(); math.Abs(got-2*1.75) > 1e-12 {
		t.Fatalf("und total = %v", got)
	}
}

func TestUndirectedKeepsSelfLoops(t *testing.T) {
	g := New(1)
	g.AddEdge(0, 0, 2)
	und := g.Undirected()
	if len(und.Out[0]) != 1 || und.Out[0][0].Weight != 2 {
		t.Fatalf("self loop = %+v", und.Out[0])
	}
}

func TestKNNGraph(t *testing.T) {
	words := []string{"a1", "a2", "a3", "b1", "b2"}
	vecs := [][]float32{{1, 0}, {1, 0.05}, {1, -0.05}, {0, 1}, {0.05, 1}}
	s, err := embed.New(words, vecs)
	if err != nil {
		t.Fatal(err)
	}
	g := KNNGraph(s, 2)
	if g.N() != 5 {
		t.Fatalf("n = %d", g.N())
	}
	for v, es := range g.Out {
		if len(es) != 2 {
			t.Fatalf("vertex %d out-degree = %d", v, len(es))
		}
		for _, e := range es {
			if e.Weight <= 0 {
				t.Fatalf("edge weight %v must be positive", e.Weight)
			}
		}
	}
	// a1's neighbours are a2, a3 — never the b's.
	for _, e := range g.Out[0] {
		if e.To > 2 {
			t.Fatalf("a1 linked to %d", e.To)
		}
	}
}

func TestKNNGraphClampsNegativeCosine(t *testing.T) {
	s, err := embed.New([]string{"a", "b"}, [][]float32{{1, 0}, {-1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	g := KNNGraph(s, 1)
	if g.Out[0][0].Weight <= 0 {
		t.Fatal("antipodal neighbour must get a clamped positive weight")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	// Two triangles, no bridge.
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	comp := g.ConnectedComponents()
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("first triangle split: %v", comp)
	}
	if comp[3] != comp[4] || comp[4] != comp[5] {
		t.Fatalf("second group split: %v", comp)
	}
	if comp[0] == comp[3] {
		t.Fatalf("components merged: %v", comp)
	}
}

func TestConnectedComponentsDirectionIgnored(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 1, 1) // only incoming for 1; still one component
	comp := g.ConnectedComponents()
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("directed edges must not split components: %v", comp)
	}
}
