// Package baseline implements the paper's §4 motivation experiment: a
// supervised classifier over simple traffic features. For every class the
// top-5 destination ports are extracted, the union forms the feature set,
// and each sender is described by the fraction of its traffic sent to each
// selected port. A cosine k-NN with Leave-One-Out evaluation then yields
// the (deliberately weak) Table 6 results.
package baseline

import (
	"sort"

	"github.com/darkvec/darkvec/internal/embed"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/trace"
)

// FeatureSet is the derived port-fraction feature space.
type FeatureSet struct {
	Ports  []trace.PortKey // feature dimensions: union of per-class top-5 ports
	Space  *embed.Space    // one row per sender, L2-normalised fractions
	Labels map[string]string
}

// Build computes features over the trace for senders in active (nil = all),
// labeling them with set. Following the paper, the per-class top-5 port
// selection intentionally biases the features toward the GT classes.
func Build(tr *trace.Trace, set *labels.Set, active map[netutil.IPv4]bool) *FeatureSet {
	classPorts := map[string]map[trace.PortKey]int{}
	senderPorts := map[netutil.IPv4]map[trace.PortKey]int{}
	senderTotal := map[netutil.IPv4]int{}
	for _, e := range tr.Events {
		if active != nil && !active[e.Src] {
			continue
		}
		c := set.Class(e.Src)
		if classPorts[c] == nil {
			classPorts[c] = map[trace.PortKey]int{}
		}
		k := e.Key()
		classPorts[c][k]++
		if senderPorts[e.Src] == nil {
			senderPorts[e.Src] = map[trace.PortKey]int{}
		}
		senderPorts[e.Src][k]++
		senderTotal[e.Src]++
	}
	// Union of top-5 ports per class.
	featSet := map[trace.PortKey]bool{}
	classes := make([]string, 0, len(classPorts))
	for c := range classPorts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		type pk struct {
			k trace.PortKey
			n int
		}
		all := make([]pk, 0, len(classPorts[c]))
		for k, n := range classPorts[c] {
			all = append(all, pk{k, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].k.Port < all[j].k.Port
		})
		for i := 0; i < len(all) && i < 5; i++ {
			featSet[all[i].k] = true
		}
	}
	ports := make([]trace.PortKey, 0, len(featSet))
	for k := range featSet {
		ports = append(ports, k)
	}
	sort.Slice(ports, func(i, j int) bool {
		if ports[i].Port != ports[j].Port {
			return ports[i].Port < ports[j].Port
		}
		return ports[i].Proto < ports[j].Proto
	})
	col := make(map[trace.PortKey]int, len(ports))
	for i, k := range ports {
		col[k] = i
	}

	senders := make([]netutil.IPv4, 0, len(senderPorts))
	for ip := range senderPorts {
		senders = append(senders, ip)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	words := make([]string, len(senders))
	vectors := make([][]float32, len(senders))
	lbl := make(map[string]string, len(senders))
	for i, ip := range senders {
		words[i] = ip.String()
		v := make([]float32, len(ports))
		total := float32(senderTotal[ip])
		for k, n := range senderPorts[ip] {
			if j, ok := col[k]; ok {
				v[j] = float32(n) / total
			}
		}
		vectors[i] = v
		lbl[words[i]] = set.Class(ip)
	}
	space, err := embed.New(words, vectors)
	if err != nil {
		panic(err) // lengths are constructed equal
	}
	return &FeatureSet{Ports: ports, Space: space, Labels: lbl}
}
