package baseline

import (
	"math"
	"testing"

	"github.com/darkvec/darkvec/internal/knn"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/packet"
	"github.com/darkvec/darkvec/internal/trace"
)

func ip(s string) netutil.IPv4 { return netutil.MustParseIPv4(s) }

func mk(ts int64, src string, port uint16) trace.Event {
	return trace.Event{
		Ts: ts, Src: ip(src), Dst: ip("198.18.0.1"),
		Port: port, Proto: packet.IPProtocolTCP,
	}
}

// fixture: class "tel" senders hit port 23, class "web" senders hit 80/443.
func fixture() (*trace.Trace, *labels.Set) {
	var events []trace.Event
	ts := int64(0)
	add := func(src string, ports ...uint16) {
		for _, p := range ports {
			events = append(events, mk(ts, src, p))
			ts++
		}
	}
	add("1.0.0.1", 23, 23, 23)
	add("1.0.0.2", 23, 23, 2323)
	add("1.0.0.3", 23, 2323, 23)
	add("2.0.0.1", 80, 443, 80)
	add("2.0.0.2", 443, 80, 443)
	add("2.0.0.3", 80, 80, 443)
	tr := trace.New(events)
	feeds := map[string][]netutil.IPv4{
		"tel": {ip("1.0.0.1"), ip("1.0.0.2"), ip("1.0.0.3")},
		"web": {ip("2.0.0.1"), ip("2.0.0.2"), ip("2.0.0.3")},
	}
	return tr, labels.Build(tr, feeds)
}

func TestBuildFeatureSet(t *testing.T) {
	tr, set := fixture()
	fs := Build(tr, set, nil)
	// Union of top-5 ports over both classes: {23, 2323, 80, 443}.
	if len(fs.Ports) != 4 {
		t.Fatalf("ports = %v", fs.Ports)
	}
	if fs.Space.Len() != 6 {
		t.Fatalf("space len = %d", fs.Space.Len())
	}
	// Feature fractions: 1.0.0.1 sent all 3 packets to 23 → fraction 1.
	row, ok := fs.Space.Index("1.0.0.1")
	if !ok {
		t.Fatal("1.0.0.1 missing")
	}
	var nonzero int
	for _, v := range fs.Space.Row(row) {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("1.0.0.1 should have a single nonzero feature, row=%v", fs.Space.Row(row))
	}
}

func TestBaselineClassifiesCleanSplit(t *testing.T) {
	tr, set := fixture()
	fs := Build(tr, set, nil)
	rep := knn.Evaluate(fs.Space, fs.Labels, 2, labels.Unknown)
	if math.Abs(rep.Accuracy-1) > 1e-9 {
		t.Fatalf("accuracy = %v\n%s", rep.Accuracy, rep)
	}
}

func TestBuildActiveFilter(t *testing.T) {
	tr, set := fixture()
	active := map[netutil.IPv4]bool{ip("1.0.0.1"): true, ip("2.0.0.1"): true}
	fs := Build(tr, set, active)
	if fs.Space.Len() != 2 {
		t.Fatalf("filtered space = %d", fs.Space.Len())
	}
}
