package louvain

import (
	"testing"
	"testing/quick"

	"github.com/darkvec/darkvec/internal/graphx"
	"github.com/darkvec/darkvec/internal/netutil"
)

// clique adds a complete subgraph over the vertex ids.
func clique(g *graphx.Graph, ids []int, w float64) {
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			g.AddEdge(ids[i], ids[j], w)
		}
	}
}

func TestTwoCliquesWithBridge(t *testing.T) {
	g := graphx.New(10)
	clique(g, []int{0, 1, 2, 3, 4}, 1)
	clique(g, []int{5, 6, 7, 8, 9}, 1)
	g.AddEdge(4, 5, 0.1) // weak bridge
	res := Run(g, Options{})
	if res.Communities != 2 {
		t.Fatalf("communities = %d, assignment %v", res.Communities, res.Community)
	}
	for v := 1; v < 5; v++ {
		if res.Community[v] != res.Community[0] {
			t.Fatalf("clique 1 split: %v", res.Community)
		}
	}
	for v := 6; v < 10; v++ {
		if res.Community[v] != res.Community[5] {
			t.Fatalf("clique 2 split: %v", res.Community)
		}
	}
	if res.Community[0] == res.Community[5] {
		t.Fatal("cliques merged")
	}
	if res.Modularity < 0.3 {
		t.Fatalf("modularity = %v", res.Modularity)
	}
}

func TestRingOfCliques(t *testing.T) {
	// 4 cliques of 5, ring-connected — the classic Louvain benchmark.
	const k, size = 4, 5
	g := graphx.New(k * size)
	for c := 0; c < k; c++ {
		ids := make([]int, size)
		for i := range ids {
			ids[i] = c*size + i
		}
		clique(g, ids, 1)
		g.AddEdge(c*size, ((c+1)%k)*size+1, 0.2)
	}
	res := Run(g, Options{})
	if res.Communities != k {
		t.Fatalf("communities = %d", res.Communities)
	}
	if res.Modularity < 0.5 {
		t.Fatalf("modularity = %v", res.Modularity)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	g := graphx.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	res := Run(g, Options{})
	if res.Communities != 2 {
		t.Fatalf("communities = %d", res.Communities)
	}
}

func TestSingletonAndEmptyGraphs(t *testing.T) {
	res := Run(graphx.New(1), Options{})
	if res.Communities != 1 || res.Community[0] != 0 {
		t.Fatalf("singleton: %+v", res)
	}
	res = Run(graphx.New(0), Options{})
	if res.Communities != 0 {
		t.Fatalf("empty: %+v", res)
	}
	// No edges: every vertex its own community, modularity 0.
	res = Run(graphx.New(3), Options{})
	if res.Communities != 3 || res.Modularity != 0 {
		t.Fatalf("edgeless: %+v", res)
	}
}

func TestCommunityIDsCompactAndSizeOrdered(t *testing.T) {
	g := graphx.New(7)
	clique(g, []int{0, 1, 2, 3}, 1) // big community
	clique(g, []int{4, 5}, 1)       // small
	// 6 isolated.
	res := Run(g, Options{})
	sizes := map[int]int{}
	maxID := 0
	for _, c := range res.Community {
		sizes[c]++
		if c > maxID {
			maxID = c
		}
	}
	if maxID != res.Communities-1 {
		t.Fatalf("ids not compact: %v", res.Community)
	}
	// id 0 must be the largest community.
	if sizes[0] != 4 {
		t.Fatalf("community 0 size = %d (assignment %v)", sizes[0], res.Community)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *graphx.Graph {
		g := graphx.New(12)
		clique(g, []int{0, 1, 2, 3}, 1)
		clique(g, []int{4, 5, 6, 7}, 1)
		clique(g, []int{8, 9, 10, 11}, 1)
		g.AddEdge(3, 4, 0.2)
		g.AddEdge(7, 8, 0.2)
		return g
	}
	a := Run(build(), Options{Seed: 5})
	b := Run(build(), Options{Seed: 5})
	for v := range a.Community {
		if a.Community[v] != b.Community[v] {
			t.Fatal("same seed must give identical partitions")
		}
	}
}

func TestModularityRangeProperty(t *testing.T) {
	f := func(edges []struct{ U, V, W uint8 }) bool {
		if len(edges) == 0 {
			return true
		}
		if len(edges) > 60 {
			edges = edges[:60]
		}
		g := graphx.New(16)
		for _, e := range edges {
			g.AddEdge(int(e.U%16), int(e.V%16), float64(e.W%8)+0.1)
		}
		res := Run(g, Options{})
		return res.Modularity >= -0.5-1e-9 && res.Modularity <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestModularityOfKnownPartition(t *testing.T) {
	// Two disconnected edges, perfect partition: Q = 1/2.
	g := graphx.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	und := g.Undirected()
	q := Modularity(und, []int{0, 0, 1, 1}, 1)
	if q < 0.499 || q > 0.501 {
		t.Fatalf("Q = %v, want 0.5", q)
	}
	// Everything in one community: Q = 0 for this graph... actually
	// Q = 1 - 1 = 0 only when a single community holds all edges and all
	// degree: in = 2m, tot = 2m → Q = 1 - 1 = 0.
	q = Modularity(und, []int{0, 0, 0, 0}, 1)
	if q > 1e-9 || q < -1e-9 {
		t.Fatalf("single community Q = %v, want 0", q)
	}
}

func TestLouvainBeatsRandomPartition(t *testing.T) {
	rng := netutil.NewRand(9)
	g := graphx.New(20)
	clique(g, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 1)
	clique(g, []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}, 1)
	g.AddEdge(0, 10, 0.5)
	res := Run(g, Options{})
	und := g.Undirected()
	random := make([]int, 20)
	for i := range random {
		random[i] = rng.Intn(4)
	}
	if Modularity(und, random, 1) >= res.Modularity {
		t.Fatal("Louvain must beat a random partition")
	}
}

func TestResolutionParameter(t *testing.T) {
	// Higher resolution favours more, smaller communities.
	g := graphx.New(12)
	clique(g, []int{0, 1, 2, 3, 4, 5}, 1)
	clique(g, []int{6, 7, 8, 9, 10, 11}, 1)
	g.AddEdge(0, 6, 0.8)
	g.AddEdge(1, 7, 0.8)
	low := Run(g, Options{Resolution: 0.1})
	high := Run(g, Options{Resolution: 4})
	if high.Communities < low.Communities {
		t.Fatalf("resolution 4 gave %d communities, resolution 0.1 gave %d",
			high.Communities, low.Communities)
	}
}

func TestMaxLevelsCap(t *testing.T) {
	g := graphx.New(9)
	clique(g, []int{0, 1, 2}, 1)
	clique(g, []int{3, 4, 5}, 1)
	clique(g, []int{6, 7, 8}, 1)
	g.AddEdge(2, 3, 0.1)
	g.AddEdge(5, 6, 0.1)
	res := Run(g, Options{MaxLevels: 1})
	if res.Communities == 0 {
		t.Fatal("capped run must still produce communities")
	}
}
