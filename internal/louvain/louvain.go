// Package louvain implements the Louvain community detection algorithm
// (Blondel et al. 2008) from scratch: repeated local modularity-gain moves
// followed by graph aggregation, until modularity stops improving. DarkVec
// uses it to extract clusters from the k′-NN similarity graph (§7.1).
package louvain

import (
	"sort"

	"github.com/darkvec/darkvec/internal/graphx"
	"github.com/darkvec/darkvec/internal/netutil"
)

// Result is a completed community assignment.
type Result struct {
	// Community[v] is the community id of vertex v; ids are compacted to
	// 0..Communities-1 ordered by decreasing community size.
	Community   []int
	Communities int
	Modularity  float64
}

// Options tune the algorithm.
type Options struct {
	Resolution float64 // γ in the modularity formula; 0 means 1
	MaxLevels  int     // aggregation levels cap; 0 means unlimited
	Seed       uint64  // vertex visiting order shuffle seed; 0 means 1
}

// Run detects communities on the undirected view of g.
func Run(g *graphx.Graph, opts Options) Result {
	if opts.Resolution == 0 {
		opts.Resolution = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	und := g.Undirected()
	n := und.N()
	// node2final[v] tracks the running assignment of original vertices.
	node2final := make([]int, n)
	for i := range node2final {
		node2final[i] = i
	}
	cur := und
	level := 0
	rng := netutil.NewRand(opts.Seed)
	for {
		comm, improved := onePass(cur, opts.Resolution, rng)
		if !improved && level > 0 {
			break
		}
		// Renumber communities compactly.
		renum := map[int]int{}
		for _, c := range comm {
			if _, ok := renum[c]; !ok {
				renum[c] = len(renum)
			}
		}
		for v := range comm {
			comm[v] = renum[comm[v]]
		}
		for v := range node2final {
			node2final[v] = comm[node2final[v]]
		}
		if !improved {
			break
		}
		cur = aggregate(cur, comm, len(renum))
		level++
		if opts.MaxLevels > 0 && level >= opts.MaxLevels {
			break
		}
		if cur.N() == len(renum) && cur.N() == 1 {
			break
		}
	}
	return finalize(und, node2final, opts.Resolution)
}

// onePass runs local move optimisation on g, returning the community of
// each vertex and whether any move improved modularity.
func onePass(g *graphx.Graph, gamma float64, rng *netutil.Rand) ([]int, bool) {
	n := g.N()
	comm := make([]int, n)
	degree := make([]float64, n)   // weighted degree incl. self-loops counted twice
	selfLoop := make([]float64, n) // self-loop weight
	var m2 float64                 // 2m: total of degrees
	for v := 0; v < n; v++ {
		comm[v] = v
		for _, e := range g.Out[v] {
			if e.To == v {
				selfLoop[v] += e.Weight
				degree[v] += 2 * e.Weight
			} else {
				degree[v] += e.Weight
			}
		}
		m2 += degree[v]
	}
	if m2 == 0 {
		return comm, false
	}
	commTot := append([]float64(nil), degree...) // Σtot per community
	order := rng.Perm(n)
	improvedEver := false
	for iter := 0; iter < 64; iter++ {
		moves := 0
		for _, v := range order {
			// Weights from v to each neighbouring community.
			links := map[int]float64{}
			for _, e := range g.Out[v] {
				if e.To == v {
					continue
				}
				links[comm[e.To]] += e.Weight
			}
			old := comm[v]
			commTot[old] -= degree[v]
			// Gain of moving v into community c:
			//   k_{v,in}(c) - γ·Σtot(c)·k_v / 2m
			best, bestGain := old, links[old]-gamma*commTot[old]*degree[v]/m2
			cands := make([]int, 0, len(links))
			for c := range links {
				cands = append(cands, c)
			}
			sort.Ints(cands) // deterministic tie-breaking
			for _, c := range cands {
				gain := links[c] - gamma*commTot[c]*degree[v]/m2
				if gain > bestGain+1e-12 {
					best, bestGain = c, gain
				}
			}
			comm[v] = best
			commTot[best] += degree[v]
			if best != old {
				moves++
				improvedEver = true
			}
		}
		if moves == 0 {
			break
		}
	}
	return comm, improvedEver
}

// aggregate builds the community-level graph: one vertex per community,
// edge weights summed, intra-community weight becoming self-loops.
func aggregate(g *graphx.Graph, comm []int, k int) *graphx.Graph {
	agg := graphx.New(k)
	acc := map[int64]float64{}
	for v, es := range g.Out {
		for _, e := range es {
			// Undirected view stores u≠v edges in both directions; halve to
			// avoid double counting, keep self-loops as-is.
			w := e.Weight
			if e.To != v {
				w /= 2
			}
			cu, cv := comm[v], comm[e.To]
			if cu > cv {
				cu, cv = cv, cu
			}
			acc[int64(cu)<<32|int64(cv)] += w
		}
	}
	for key, w := range acc {
		u, v := int(key>>32), int(key&0xffffffff)
		agg.Out[u] = append(agg.Out[u], graphx.Edge{To: v, Weight: w})
		if u != v {
			agg.Out[v] = append(agg.Out[v], graphx.Edge{To: u, Weight: w})
		}
	}
	return agg
}

// finalize compacts community ids by decreasing size and computes the final
// modularity on the original undirected graph.
func finalize(und *graphx.Graph, comm []int, gamma float64) Result {
	sizes := map[int]int{}
	for _, c := range comm {
		sizes[c]++
	}
	ids := make([]int, 0, len(sizes))
	for c := range sizes {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool {
		if sizes[ids[i]] != sizes[ids[j]] {
			return sizes[ids[i]] > sizes[ids[j]]
		}
		return ids[i] < ids[j]
	})
	renum := make(map[int]int, len(ids))
	for i, c := range ids {
		renum[c] = i
	}
	out := make([]int, len(comm))
	for v, c := range comm {
		out[v] = renum[c]
	}
	return Result{
		Community:   out,
		Communities: len(ids),
		Modularity:  Modularity(und, out, gamma),
	}
}

// Modularity computes Newman modularity of an assignment on the undirected
// view of g (pass an already-undirected graph to avoid re-symmetrising).
func Modularity(g *graphx.Graph, comm []int, gamma float64) float64 {
	if gamma == 0 {
		gamma = 1
	}
	n := g.N()
	degree := make([]float64, n)
	var m2 float64
	inWeight := map[int]float64{}
	totWeight := map[int]float64{}
	for v := 0; v < n; v++ {
		for _, e := range g.Out[v] {
			if e.To == v {
				degree[v] += 2 * e.Weight
				inWeight[comm[v]] += 2 * e.Weight
			} else {
				degree[v] += e.Weight
				if comm[e.To] == comm[v] {
					inWeight[comm[v]] += e.Weight
				}
			}
		}
		m2 += degree[v]
	}
	if m2 == 0 {
		return 0
	}
	for v := 0; v < n; v++ {
		totWeight[comm[v]] += degree[v]
	}
	var q float64
	for _, in := range inWeight {
		q += in / m2
	}
	for _, tot := range totWeight {
		q -= gamma * (tot / m2) * (tot / m2)
	}
	// Communities with no internal weight still contribute the -Σtot² term,
	// handled above since totWeight covers all communities.
	return q
}
