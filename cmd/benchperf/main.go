// Command benchperf measures the throughput of the pipeline's
// perf-critical substrates — corpus construction, Word2Vec training, the
// end-to-end trace→model path, the batched exact k-NN engine, the
// parallel silhouette, and the drift-gate check a retrain cycle pays
// before publishing — at a fixed operating point, and writes the numbers
// to a JSON file (BENCH_perf.json) so runs can be compared across commits
// and machines.
//
// The report holds one entry per GOMAXPROCS value in its "runs" array;
// re-running with a different -maxprocs merges into the existing file
// instead of overwriting it, so a single BENCH_perf.json shows the serial
// and multi-core numbers side by side. Substrates with a serial pin
// (corpus, trace→model, k-NN, classification, silhouette) additionally
// record their one-worker rate inside each run, making parallel speedup
// visible directly.
//
// Usage:
//
//	benchperf [-out BENCH_perf.json] [-iters 3] [-maxprocs N] [-days 8] ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/darkvec/darkvec/internal/cluster"
	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/corpus"
	"github.com/darkvec/darkvec/internal/drift"
	"github.com/darkvec/darkvec/internal/embed"
	"github.com/darkvec/darkvec/internal/experiments"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/services"
	"github.com/darkvec/darkvec/internal/trace"
	"github.com/darkvec/darkvec/internal/vecmath"
	"github.com/darkvec/darkvec/internal/w2v"
	"github.com/darkvec/darkvec/internal/wal"
)

// report is the BENCH_perf.json schema: machine facts and options shared
// across runs, plus one runEntry per GOMAXPROCS setting.
type report struct {
	GoVersion string     `json:"go_version"`
	GOOS      string     `json:"goos"`
	GOARCH    string     `json:"goarch"`
	Iters     int        `json:"iters"`
	Options   options    `json:"options"`
	Runs      []runEntry `json:"runs"`
}

type runEntry struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoMaxProcs    int     `json:"go_max_procs"`
	Metrics       metrics `json:"metrics"`
}

type options struct {
	Seed          uint64  `json:"seed"`
	Days          int     `json:"days"`
	Scale         float64 `json:"scale"`
	Rate          float64 `json:"rate"`
	Dim           int     `json:"dim"`
	Window        int     `json:"window"`
	Epochs        int     `json:"epochs"`
	K             int     `json:"k"`
	ANNRows       int     `json:"ann_rows"`
	CorpusScale   int     `json:"corpus_scale"`
	RetrainEpochs int     `json:"retrain_epochs"`
}

type metrics struct {
	SpaceRows int `json:"space_rows"`

	CorpusEventsPerS       float64 `json:"corpus_events_per_s"`
	CorpusEventsPerSSerial float64 `json:"corpus_events_per_s_serial"`

	W2VPairsPerS float64 `json:"w2v_pairs_per_s"`

	TraceToModelS       float64 `json:"trace_to_model_s"`
	TraceToModelSSerial float64 `json:"trace_to_model_s_serial"`

	KNNRowsPerS       float64 `json:"knn_rows_per_s"`
	KNNRowsPerSSerial float64 `json:"knn_rows_per_s_serial"`

	ClassifyPredsPerS       float64 `json:"classify_preds_per_s"`
	ClassifyPredsPerSSerial float64 `json:"classify_preds_per_s_serial"`

	SilhouetteCellsPerS       float64 `json:"silhouette_cells_per_s"`
	SilhouetteCellsPerSSerial float64 `json:"silhouette_cells_per_s_serial"`

	DriftCheckS float64 `json:"drift_check_s"`

	// Rolling-retrain substrate: the darkvecd -warm path measured on a
	// ≥90%-overlap window pair. retrain_cold_s is a from-scratch retrain of
	// the shifted window at the full retrain_epochs budget; retrain_warm_s
	// is the same retrain seeded from the previous window's model, training
	// only the delta-sized epoch budget. The parity deltas (warm − cold) are
	// the Fig 7 k-NN accuracy and mean silhouette on the shifted window's
	// eval day — the evidence the speedup does not trade quality away.
	RetrainColdS           float64 `json:"retrain_cold_s"`
	RetrainWarmS           float64 `json:"retrain_warm_s"`
	RetrainColdEpochs      int     `json:"retrain_cold_epochs"`
	RetrainWarmEpochs      int     `json:"retrain_warm_epochs"`
	RetrainOverlap         float64 `json:"retrain_window_overlap"`
	RetrainAccuracyDelta   float64 `json:"retrain_warm_accuracy_delta"`
	RetrainSilhouetteDelta float64 `json:"retrain_warm_silhouette_delta"`

	// Approximate k-NN substrate, measured on a synthetic clustered space
	// of ann_rows senders (the exact engine's O(n²) scan is measured above
	// at the dataset's natural size; the IVF index targets spaces two
	// orders larger). ann_rows_per_s and ann_exact_rows_per_s share the
	// same query sample, so their ratio is the honest speedup, and
	// ann_recall_at_k is recall@10 of the approximate answers against the
	// exact ones on that sample.
	ANNRowsPerS         float64 `json:"ann_rows_per_s"`
	ANNExactRowsPerS    float64 `json:"ann_exact_rows_per_s"`
	ANNRecallAtK        float64 `json:"ann_recall_at_k"`
	ANNBuildS           float64 `json:"ann_build_s"`
	ANNNProbe           int     `json:"ann_nprobe"`
	ANNCells            int     `json:"ann_cells"`
	QuantizedDotOpsPerS float64 `json:"quantized_dot_ops_per_s"`

	// Durable-ingestion substrate: group-commit append throughput per fsync
	// policy (the price of each durability level on the hot ingest path)
	// and the boot-replay latency of the resulting log.
	WALAppendAlwaysPerS   float64 `json:"wal_append_events_per_s_always"`
	WALAppendIntervalPerS float64 `json:"wal_append_events_per_s_interval"`
	WALAppendOffPerS      float64 `json:"wal_append_events_per_s_off"`
	WALReplayS            float64 `json:"wal_replay_s"`

	FedMergeS     float64 `json:"fed_merge_s"`
	FedQueryP99Ms float64 `json:"fed_query_p99_ms"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_perf.json", "output JSON path (merged per go_max_procs)")
		iters    = flag.Int("iters", 3, "timing iterations per substrate (best kept)")
		maxprocs = flag.Int("maxprocs", 0, "override GOMAXPROCS for this run (0 = runtime default)")
		days     = flag.Int("days", 8, "trace length in days")
		scale    = flag.Float64("scale", 0.02, "population scale")
		rate     = flag.Float64("rate", 0.05, "packet rate scale")
		dim      = flag.Int("dim", 24, "embedding dimension V")
		window   = flag.Int("window", 10, "context window c")
		epochs   = flag.Int("epochs", 2, "training epochs")
		k        = flag.Int("k", 7, "classifier neighbourhood size")
		seed     = flag.Uint64("seed", 1, "run seed")
		annRows  = flag.Int("annrows", 100000, "synthetic space size for the approximate-k-NN benchmark (0 = skip)")
		corpusScale   = flag.Int("corpusscale", 1, "event multiplier for the corpus-build and trace→model substrates (replicates the trace end-to-end N times)")
		retrainEpochs = flag.Int("retrainepochs", 6, "full epoch budget of the warm-vs-cold retrain substrate")
	)
	flag.Parse()
	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}

	opts := experiments.Options{
		Seed: *seed, Days: *days, Scale: *scale, Rate: *rate,
		Dim: *dim, Window: *window, Epochs: *epochs,
	}
	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Iters:     *iters,
		Options: options{
			Seed: *seed, Days: *days, Scale: *scale, Rate: *rate,
			Dim: *dim, Window: *window, Epochs: *epochs, K: *k,
			ANNRows: *annRows, CorpusScale: *corpusScale, RetrainEpochs: *retrainEpochs,
		},
	}
	run := runEntry{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
	}

	start := time.Now()
	fmt.Printf("generating dataset (days=%d scale=%g rate=%g seed=%d procs=%d)...\n",
		*days, *scale, *rate, *seed, run.GoMaxProcs)
	env := experiments.NewEnv(opts)
	emb, err := env.Embedding(core.ServiceDomain, *days)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	space, _ := emb.EvalSpace(env.Last, env.Active)
	run.Metrics.SpaceRows = space.Len()
	fmt.Printf("dataset ready in %s: eval space %d rows x dim %d\n\n",
		time.Since(start).Round(time.Millisecond), space.Len(), space.Dim)

	// Corpus construction throughput: full interned build over the active-
	// filtered trace, fresh interner each iteration so every sender pays
	// its one-time interning cost inside the measurement. -corpusscale
	// replicates the trace end-to-end so the parallel substrates can be
	// measured past the generator's natural event count (the regime where
	// the multi-worker build overtakes the serial one).
	def := services.NewDomain()
	filtered := scaleTrace(env.Full.FilterSenders(env.Full.ActiveSenders(10)), *corpusScale)
	scaledFull := scaleTrace(env.Full, *corpusScale)
	if *corpusScale > 1 {
		fmt.Printf("corpus scale x%d: %d events for the corpus-build and trace→model substrates\n",
			*corpusScale, filtered.Len())
	}
	events := float64(filtered.Len())
	corpusRate := func(workers int) func() (float64, error) {
		return func() (float64, error) {
			t0 := time.Now()
			c := corpus.BuildOpts(filtered, def, corpus.DefaultDeltaT, corpus.Options{Workers: workers})
			if c.Tokens() == 0 {
				return 0, fmt.Errorf("empty corpus")
			}
			return events / time.Since(t0).Seconds(), nil
		}
	}
	run.Metrics.CorpusEventsPerSSerial = best(*iters, corpusRate(1))
	run.Metrics.CorpusEventsPerS = best(*iters, corpusRate(0))
	fmt.Printf("corpus build:   %12.0f events/s (serial %0.f, x%.2f)\n",
		run.Metrics.CorpusEventsPerS, run.Metrics.CorpusEventsPerSSerial,
		run.Metrics.CorpusEventsPerS/run.Metrics.CorpusEventsPerSSerial)

	// Word2Vec training throughput over the interned corpus.
	sentences := corpus.Build(filtered, def, corpus.DefaultDeltaT).Sentences()
	cfg := w2v.Config{
		Dim: *dim, Window: *window, Epochs: 1,
		Workers: 1, Seed: *seed, ShrinkWindow: true, PadToken: "NULL",
	}
	run.Metrics.W2VPairsPerS = best(*iters, func() (float64, error) {
		t0 := time.Now()
		m, err := w2v.Train(sentences, cfg)
		if err != nil {
			return 0, err
		}
		return float64(m.Pairs) / time.Since(t0).Seconds(), nil
	})
	fmt.Printf("w2v train:      %12.0f pairs/s\n", run.Metrics.W2VPairsPerS)

	// End-to-end trace → model latency (filter, corpus, one-epoch train),
	// the path a darkvecd retrain cycle pays. Lowest wall time kept.
	e2eCfg := core.DefaultConfig()
	e2eCfg.W2V = cfg
	e2e := func(workers int) func() (float64, error) {
		return func() (float64, error) {
			t0 := time.Now()
			if _, err := core.TrainEmbeddingOpts(scaledFull, e2eCfg, core.TrainOpts{CorpusWorkers: workers}); err != nil {
				return 0, err
			}
			return time.Since(t0).Seconds(), nil
		}
	}
	run.Metrics.TraceToModelSSerial = bestLow(*iters, e2e(1))
	run.Metrics.TraceToModelS = bestLow(*iters, e2e(0))
	fmt.Printf("trace→model:    %12.3f s        (serial %.3f, x%.2f)\n",
		run.Metrics.TraceToModelS, run.Metrics.TraceToModelSSerial,
		run.Metrics.TraceToModelSSerial/run.Metrics.TraceToModelS)

	// Warm-vs-cold rolling retrain: two windows covering 95% of the trace
	// each, shifted so they overlap ~94.7% — the darkvecd cadence where a
	// retrain re-sees almost the entire previous window. Both numbers are
	// the full trace→model path (filter, corpus, vocab, train) at the
	// production retrain_epochs budget; warm seeds from the first window's
	// model through the shared interner, exactly as the daemon does.
	{
		first, last := env.Full.Span()
		span := last - first
		winLen := span * 19 / 20
		trA := env.Full.Window(first, first+winLen)
		trB := env.Full.Window(last-winLen, last+1)
		run.Metrics.RetrainOverlap = float64(2*winLen-span) / float64(winLen)

		rcfg := core.DefaultConfig()
		rcfg.W2V = w2v.Config{
			Dim: *dim, Window: *window, Epochs: *retrainEpochs,
			Seed: *seed, ShrinkWindow: true, PadToken: "NULL",
		}
		in := corpus.NewInterner()
		prev, err := core.TrainEmbeddingOpts(trA, rcfg, core.TrainOpts{Interner: in})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchperf:", err)
			os.Exit(1)
		}
		var coldEmb, warmEmb *core.Embedding
		run.Metrics.RetrainColdS = bestLow(*iters, func() (float64, error) {
			t0 := time.Now()
			e, err := core.TrainEmbeddingOpts(trB, rcfg, core.TrainOpts{Interner: in})
			if err != nil {
				return 0, err
			}
			coldEmb = e
			return time.Since(t0).Seconds(), nil
		})
		run.Metrics.RetrainWarmS = bestLow(*iters, func() (float64, error) {
			t0 := time.Now()
			e, err := core.TrainEmbeddingOpts(trB, rcfg, core.TrainOpts{
				Interner: in,
				Warm:     &w2v.WarmSeed{Prev: prev.Model, PrevPerm: prev.Model.Perm},
			})
			if err != nil {
				return 0, err
			}
			warmEmb = e
			return time.Since(t0).Seconds(), nil
		})
		run.Metrics.RetrainColdEpochs = coldEmb.Epochs
		run.Metrics.RetrainWarmEpochs = warmEmb.Epochs

		// Quality parity on the shifted window's eval day: Fig 7 k-NN
		// accuracy and mean silhouette, warm minus cold.
		parity := func(e *core.Embedding) (float64, float64) {
			sp, _ := e.EvalSpace(trB.LastDays(1), nil)
			acc := core.Evaluate(sp, env.GT, *k).Accuracy
			sil, err := cluster.Silhouette(sp, core.Cluster(sp, 3, *seed).Assign)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchperf:", err)
				os.Exit(1)
			}
			var sum float64
			for _, v := range sil {
				sum += v
			}
			if len(sil) > 0 {
				sum /= float64(len(sil))
			}
			return acc, sum
		}
		accC, silC := parity(coldEmb)
		accW, silW := parity(warmEmb)
		run.Metrics.RetrainAccuracyDelta = accW - accC
		run.Metrics.RetrainSilhouetteDelta = silW - silC
		fmt.Printf("retrain warm:   %12.3f s        (cold %.3f, x%.2f; %d vs %d epochs, overlap %.1f%%)\n",
			run.Metrics.RetrainWarmS, run.Metrics.RetrainColdS,
			run.Metrics.RetrainColdS/run.Metrics.RetrainWarmS,
			run.Metrics.RetrainWarmEpochs, run.Metrics.RetrainColdEpochs,
			100*run.Metrics.RetrainOverlap)
		fmt.Printf("retrain parity: %+12.4f accuracy delta, %+.4f silhouette delta (warm - cold)\n",
			run.Metrics.RetrainAccuracyDelta, run.Metrics.RetrainSilhouetteDelta)
	}

	// Batched k-NN engine, serial pin then all cores.
	knnRate := func(s *embed.Space) (float64, error) {
		t0 := time.Now()
		if nn := s.AllKNN(*k); len(nn) != s.Len() {
			return 0, fmt.Errorf("AllKNN length mismatch")
		}
		return float64(s.Len()) / time.Since(t0).Seconds(), nil
	}
	space.MaxProcs = 1
	run.Metrics.KNNRowsPerSSerial = best(*iters, func() (float64, error) { return knnRate(space) })
	space.MaxProcs = 0
	run.Metrics.KNNRowsPerS = best(*iters, func() (float64, error) { return knnRate(space) })
	fmt.Printf("knn all:        %12.0f rows/s   (serial %0.f, x%.2f)\n",
		run.Metrics.KNNRowsPerS, run.Metrics.KNNRowsPerSSerial,
		run.Metrics.KNNRowsPerS/run.Metrics.KNNRowsPerSSerial)

	// Approximate k-NN at scale. The paper's 30-day darknet holds ~540k
	// senders — far beyond what the trace generator can produce in a
	// benchmark run — so the index is measured on a synthetic clustered
	// space of -annrows rows (senders form coordinated cohorts; clustered
	// data is the regime IVF is built for). Exact and approximate rates
	// share one deterministic query sample; recall@10 is computed on it.
	if *annRows > 0 {
		const annK = 10
		annSpace := syntheticSpace(*annRows, *dim, *seed)
		t0 := time.Now()
		ix, err := annSpace.BuildIVF(embed.IVFOptions{Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchperf:", err)
			os.Exit(1)
		}
		run.Metrics.ANNBuildS = time.Since(t0).Seconds()
		st := ix.Stats()
		run.Metrics.ANNNProbe = st.NProbe
		run.Metrics.ANNCells = st.Cells

		nq := 2048
		if nq > annSpace.Len() {
			nq = annSpace.Len()
		}
		queries := make([]int, nq)
		for i := range queries {
			queries[i] = i * annSpace.Len() / nq
		}
		var exactNN, annNN [][]embed.Neighbor
		run.Metrics.ANNExactRowsPerS = best(*iters, func() (float64, error) {
			t0 := time.Now()
			exactNN = annSpace.KNNBatch(queries, annK)
			return float64(nq) / time.Since(t0).Seconds(), nil
		})
		run.Metrics.ANNRowsPerS = best(*iters, func() (float64, error) {
			t0 := time.Now()
			annNN = ix.KNNBatch(queries, annK)
			return float64(nq) / time.Since(t0).Seconds(), nil
		})
		hit, total := 0, 0
		for qi := range exactNN {
			in := make(map[int]bool, len(exactNN[qi]))
			for _, nb := range exactNN[qi] {
				in[nb.Row] = true
			}
			total += len(exactNN[qi])
			for _, nb := range annNN[qi] {
				if in[nb.Row] {
					hit++
				}
			}
		}
		if total > 0 {
			run.Metrics.ANNRecallAtK = float64(hit) / float64(total)
		}
		fmt.Printf("ann (%d rows): %11.0f rows/s   (exact %0.f, x%.1f; recall@%d %.3f, %d/%d cells, build %.2fs)\n",
			*annRows, run.Metrics.ANNRowsPerS, run.Metrics.ANNExactRowsPerS,
			run.Metrics.ANNRowsPerS/run.Metrics.ANNExactRowsPerS,
			annK, run.Metrics.ANNRecallAtK, st.NProbe, st.Cells, run.Metrics.ANNBuildS)

		// The int8 widened dot kernel: one quantized query against every
		// quantized row, repeatedly — the inner loop of a quantized member
		// scan, counted in multiply-accumulate ops.
		annSpace.Quantize()
		qq := make([]int8, annSpace.Dim)
		vecmath.Quantize(qq, annSpace.Row(0))
		var sink int64
		run.Metrics.QuantizedDotOpsPerS = best(*iters, func() (float64, error) {
			t0 := time.Now()
			for r := 0; r < annSpace.Len(); r++ {
				codes, _ := annSpace.QuantizedRow(r)
				sink += int64(vecmath.DotInt8(qq, codes))
			}
			return float64(annSpace.Len()) * float64(annSpace.Dim) / time.Since(t0).Seconds(), nil
		})
		if sink == 0 {
			fmt.Fprintln(os.Stderr, "benchperf: quantized dot sink unexpectedly zero")
		}
		fmt.Printf("int8 dot:       %12.0f ops/s\n", run.Metrics.QuantizedDotOpsPerS)
	}

	// Leave-One-Out classification.
	classifyRate := func() (float64, error) {
		t0 := time.Now()
		preds := core.Predictions(space, env.GT, *k)
		if len(preds) == 0 {
			return 0, fmt.Errorf("no predictions")
		}
		return float64(len(preds)) / time.Since(t0).Seconds(), nil
	}
	space.MaxProcs = 1
	run.Metrics.ClassifyPredsPerSSerial = best(*iters, classifyRate)
	space.MaxProcs = 0
	run.Metrics.ClassifyPredsPerS = best(*iters, classifyRate)
	fmt.Printf("classify LOO:   %12.0f preds/s  (serial %0.f, x%.2f)\n",
		run.Metrics.ClassifyPredsPerS, run.Metrics.ClassifyPredsPerSSerial,
		run.Metrics.ClassifyPredsPerS/run.Metrics.ClassifyPredsPerSSerial)

	// Silhouette; throughput counted in pairwise cells (the n² matrix the
	// naive algorithm would materialise).
	assign := core.Cluster(space, 3, *seed).Assign
	cells := float64(space.Len()) * float64(space.Len())
	silRate := func() (float64, error) {
		t0 := time.Now()
		sil, err := cluster.Silhouette(space, assign)
		if err != nil || len(sil) != space.Len() {
			return 0, fmt.Errorf("silhouette: %v", err)
		}
		return cells / time.Since(t0).Seconds(), nil
	}
	space.MaxProcs = 1
	run.Metrics.SilhouetteCellsPerSSerial = best(*iters, silRate)
	space.MaxProcs = 0
	run.Metrics.SilhouetteCellsPerS = best(*iters, silRate)
	fmt.Printf("silhouette:     %12.0f cells/s  (serial %0.f, x%.2f)\n",
		run.Metrics.SilhouetteCellsPerS, run.Metrics.SilhouetteCellsPerSSerial,
		run.Metrics.SilhouetteCellsPerS/run.Metrics.SilhouetteCellsPerSSerial)

	// Drift gate latency: what a darkvecd retrain cycle pays on top of
	// training — freeze the candidate (clustering + silhouette) and compare
	// it against an already-captured baseline. Lowest wall time kept.
	baseSnap, err := drift.Capture(space, assign, "baseline", nil, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	run.Metrics.DriftCheckS = bestLow(*iters, func() (float64, error) {
		t0 := time.Now()
		cand, err := drift.Capture(space, assign, "candidate", nil, nil)
		if err != nil {
			return 0, err
		}
		if _, err := drift.Compare(baseSnap, cand, drift.Options{}); err != nil {
			return 0, err
		}
		return time.Since(t0).Seconds(), nil
	})
	fmt.Printf("drift check:    %12.3f s\n", run.Metrics.DriftCheckS)

	// Durable ingestion: WAL append throughput under each fsync policy,
	// batched exactly like the ingest consumer (commit per 256 events), and
	// the boot replay over the full log. Fresh directory per iteration so
	// every run pays segment creation; the replay log is built once.
	walBench := func(policy wal.SyncPolicy) func() (float64, error) {
		return func() (float64, error) {
			dir, err := os.MkdirTemp("", "benchwal-*")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(dir)
			l, err := wal.Open(dir, wal.Options{Policy: policy})
			if err != nil {
				return 0, err
			}
			t0 := time.Now()
			for i, e := range env.Full.Events {
				if err := l.Append(e); err != nil {
					return 0, err
				}
				if (i+1)%256 == 0 {
					if err := l.Commit(); err != nil {
						return 0, err
					}
				}
			}
			if err := l.Commit(); err != nil {
				return 0, err
			}
			rate := float64(env.Full.Len()) / time.Since(t0).Seconds()
			return rate, l.Close()
		}
	}
	run.Metrics.WALAppendAlwaysPerS = best(*iters, walBench(wal.SyncAlways))
	run.Metrics.WALAppendIntervalPerS = best(*iters, walBench(wal.SyncInterval))
	run.Metrics.WALAppendOffPerS = best(*iters, walBench(wal.SyncOff))
	fmt.Printf("wal append:     %12.0f events/s (always; interval %0.f, off %0.f)\n",
		run.Metrics.WALAppendAlwaysPerS, run.Metrics.WALAppendIntervalPerS, run.Metrics.WALAppendOffPerS)

	walDir, err := os.MkdirTemp("", "benchwal-replay-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(walDir)
	replayLog, err := wal.Open(walDir, wal.Options{Policy: wal.SyncOff})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	for _, e := range env.Full.Events {
		if err := replayLog.Append(e); err != nil {
			fmt.Fprintln(os.Stderr, "benchperf:", err)
			os.Exit(1)
		}
	}
	if err := replayLog.Commit(); err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	run.Metrics.WALReplayS = bestLow(*iters, func() (float64, error) {
		t0 := time.Now()
		n := 0
		if err := replayLog.Replay(func(trace.Event) error { n++; return nil }); err != nil {
			return 0, err
		}
		if n != env.Full.Len() {
			return 0, fmt.Errorf("replay returned %d of %d events", n, env.Full.Len())
		}
		return time.Since(t0).Seconds(), nil
	})
	replayLog.Close()
	fmt.Printf("wal replay:     %12.3f s        (%d events)\n", run.Metrics.WALReplayS, env.Full.Len())

	// Federation substrates: the aggregator's two hot paths against a
	// 3-vantage fleet of HTTP stand-ins. fed_merge_s is a cold intern-mirror
	// sync of all three vantages in parallel (what admission after a restart
	// costs); fed_query_p99_ms is the tail latency of a federated classify —
	// two HTTP hops, 3-way fan-out, vote merge.
	fleet := newBenchFleet(env, space, *k)
	defer fleet.close()
	run.Metrics.FedMergeS = bestLow(*iters, fleet.mergeOnce)
	fmt.Printf("fed merge:      %12.3f s        (3 vantages, %d senders each)\n",
		run.Metrics.FedMergeS, fleet.tableLen)
	p99, err := fleet.queryP99(*iters, 200)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	run.Metrics.FedQueryP99Ms = p99
	fmt.Printf("fed query p99:  %12.3f ms       (200 federated classifies)\n", run.Metrics.FedQueryP99Ms)

	rep.Runs = mergeRuns(*out, rep, run)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s (%d run(s), total %s)\n", *out, len(rep.Runs), time.Since(start).Round(time.Millisecond))
}

// scaleTrace replicates a trace end-to-end factor times, shifting each
// copy past the previous one so the result is a valid (sorted) trace with
// factor× the events over factor× the span. The sender population is
// unchanged — the point is a bigger event stream for the throughput
// substrates, not a bigger vocabulary.
func scaleTrace(tr *trace.Trace, factor int) *trace.Trace {
	if factor <= 1 {
		return tr
	}
	first, last := tr.Span()
	span := last - first + 1
	big := &trace.Trace{Events: make([]trace.Event, 0, tr.Len()*factor)}
	for r := 0; r < factor; r++ {
		off := int64(r) * span
		for _, e := range tr.Events {
			e.Ts += off
			big.Events = append(big.Events, e)
		}
	}
	return big
}

// syntheticSpace builds a clustered embedding space of n rows: senders are
// drawn around 256 cohort centres with gaussian noise, mirroring the
// coordinated-scanner structure real darknet embeddings exhibit (and the
// regime an inverted-file index is designed for). Deterministic in seed.
func syntheticSpace(n, dim int, seed uint64) *embed.Space {
	const centers = 256
	rng := netutil.NewRand(seed*0x9e3779b9 + 7)
	ctr := make([][]float32, centers)
	for c := range ctr {
		ctr[c] = make([]float32, dim)
		for d := range ctr[c] {
			ctr[c][d] = float32(rng.NormFloat64())
		}
	}
	words := make([]string, n)
	vecs := make([][]float32, n)
	for i := 0; i < n; i++ {
		words[i] = "s" + netutil.IPv4(uint32(i)).String()
		base := ctr[i%centers]
		v := make([]float32, dim)
		for d := range v {
			v[d] = base[d] + 0.35*float32(rng.NormFloat64())
		}
		vecs[i] = v
	}
	s, err := embed.New(words, vecs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	return s
}

// mergeRuns folds this run into any runs already recorded in the output
// file: an existing entry with the same GOMAXPROCS (and compatible shared
// fields) is replaced, others are kept, and the result is sorted by
// GOMAXPROCS. An unreadable or old-schema file just starts fresh.
func mergeRuns(path string, rep report, run runEntry) []runEntry {
	runs := []runEntry{run}
	data, err := os.ReadFile(path)
	if err != nil {
		return runs
	}
	var prev report
	if json.Unmarshal(data, &prev) != nil || prev.GoVersion != rep.GoVersion ||
		prev.GOOS != rep.GOOS || prev.GOARCH != rep.GOARCH || prev.Options != rep.Options {
		return runs
	}
	for _, r := range prev.Runs {
		if r.GoMaxProcs != run.GoMaxProcs {
			runs = append(runs, r)
		}
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].GoMaxProcs < runs[j].GoMaxProcs })
	return runs
}

// best runs fn iters times and keeps the highest throughput — the standard
// best-of-N discipline that filters scheduler noise out of rate measurements.
func best(iters int, fn func() (float64, error)) float64 {
	var top float64
	for i := 0; i < iters; i++ {
		rate, err := fn()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchperf:", err)
			os.Exit(1)
		}
		if rate > top {
			top = rate
		}
	}
	return top
}

// bestLow is best for latency metrics: lowest value kept.
func bestLow(iters int, fn func() (float64, error)) float64 {
	var low float64
	for i := 0; i < iters; i++ {
		v, err := fn()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchperf:", err)
			os.Exit(1)
		}
		if i == 0 || v < low {
			low = v
		}
	}
	return low
}
