// Command benchperf measures the throughput of the pipeline's three
// perf-critical substrates — Word2Vec training, the batched exact k-NN
// engine, and the parallel silhouette — at a fixed operating point, and
// writes the numbers to a JSON file (BENCH_perf.json) so runs can be
// compared across commits and machines.
//
// For the substrates with a serial pin (k-NN, classification, silhouette)
// both the MaxProcs=1 and the all-cores number are recorded, making the
// parallel speedup visible directly in the report.
//
// Usage:
//
//	benchperf [-out BENCH_perf.json] [-iters 3] [-days 8] [-scale 0.02] ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/darkvec/darkvec/internal/cluster"
	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/corpus"
	"github.com/darkvec/darkvec/internal/embed"
	"github.com/darkvec/darkvec/internal/experiments"
	"github.com/darkvec/darkvec/internal/services"
	"github.com/darkvec/darkvec/internal/w2v"
)

// report is the BENCH_perf.json schema.
type report struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	GoMaxProcs    int     `json:"go_max_procs"`
	Iters         int     `json:"iters"`
	Options       options `json:"options"`
	Metrics       metrics `json:"metrics"`
}

type options struct {
	Seed   uint64  `json:"seed"`
	Days   int     `json:"days"`
	Scale  float64 `json:"scale"`
	Rate   float64 `json:"rate"`
	Dim    int     `json:"dim"`
	Window int     `json:"window"`
	Epochs int     `json:"epochs"`
	K      int     `json:"k"`
}

type metrics struct {
	SpaceRows int `json:"space_rows"`

	W2VPairsPerS float64 `json:"w2v_pairs_per_s"`

	KNNRowsPerS       float64 `json:"knn_rows_per_s"`
	KNNRowsPerSSerial float64 `json:"knn_rows_per_s_serial"`

	ClassifyPredsPerS       float64 `json:"classify_preds_per_s"`
	ClassifyPredsPerSSerial float64 `json:"classify_preds_per_s_serial"`

	SilhouetteCellsPerS       float64 `json:"silhouette_cells_per_s"`
	SilhouetteCellsPerSSerial float64 `json:"silhouette_cells_per_s_serial"`
}

func main() {
	var (
		out    = flag.String("out", "BENCH_perf.json", "output JSON path")
		iters  = flag.Int("iters", 3, "timing iterations per substrate (best kept)")
		days   = flag.Int("days", 8, "trace length in days")
		scale  = flag.Float64("scale", 0.02, "population scale")
		rate   = flag.Float64("rate", 0.05, "packet rate scale")
		dim    = flag.Int("dim", 24, "embedding dimension V")
		window = flag.Int("window", 10, "context window c")
		epochs = flag.Int("epochs", 2, "training epochs")
		k      = flag.Int("k", 7, "classifier neighbourhood size")
		seed   = flag.Uint64("seed", 1, "run seed")
	)
	flag.Parse()

	opts := experiments.Options{
		Seed: *seed, Days: *days, Scale: *scale, Rate: *rate,
		Dim: *dim, Window: *window, Epochs: *epochs,
	}
	rep := report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Iters:         *iters,
		Options: options{
			Seed: *seed, Days: *days, Scale: *scale, Rate: *rate,
			Dim: *dim, Window: *window, Epochs: *epochs, K: *k,
		},
	}

	start := time.Now()
	fmt.Printf("generating dataset (days=%d scale=%g rate=%g seed=%d)...\n",
		*days, *scale, *rate, *seed)
	env := experiments.NewEnv(opts)
	emb, err := env.Embedding(core.ServiceDomain, *days)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	space, _ := emb.EvalSpace(env.Last, env.Active)
	rep.Metrics.SpaceRows = space.Len()
	fmt.Printf("dataset ready in %s: eval space %d rows x dim %d\n\n",
		time.Since(start).Round(time.Millisecond), space.Len(), space.Dim)

	// Word2Vec training throughput.
	def := services.NewDomain()
	filtered := env.Full.FilterSenders(env.Full.ActiveSenders(10))
	sentences := corpus.Build(filtered, def, corpus.DefaultDeltaT).Sentences()
	cfg := w2v.Config{
		Dim: *dim, Window: *window, Epochs: 1,
		Workers: 1, Seed: *seed, ShrinkWindow: true, PadToken: "NULL",
	}
	rep.Metrics.W2VPairsPerS = best(*iters, func() (float64, error) {
		t0 := time.Now()
		m, err := w2v.Train(sentences, cfg)
		if err != nil {
			return 0, err
		}
		return float64(m.Pairs) / time.Since(t0).Seconds(), nil
	})
	fmt.Printf("w2v train:      %12.0f pairs/s\n", rep.Metrics.W2VPairsPerS)

	// Batched k-NN engine, serial pin then all cores.
	knnRate := func(s *embed.Space) (float64, error) {
		t0 := time.Now()
		if nn := s.AllKNN(*k); len(nn) != s.Len() {
			return 0, fmt.Errorf("AllKNN length mismatch")
		}
		return float64(s.Len()) / time.Since(t0).Seconds(), nil
	}
	space.MaxProcs = 1
	rep.Metrics.KNNRowsPerSSerial = best(*iters, func() (float64, error) { return knnRate(space) })
	space.MaxProcs = 0
	rep.Metrics.KNNRowsPerS = best(*iters, func() (float64, error) { return knnRate(space) })
	fmt.Printf("knn all:        %12.0f rows/s   (serial %0.f, x%.2f)\n",
		rep.Metrics.KNNRowsPerS, rep.Metrics.KNNRowsPerSSerial,
		rep.Metrics.KNNRowsPerS/rep.Metrics.KNNRowsPerSSerial)

	// Leave-One-Out classification.
	classifyRate := func() (float64, error) {
		t0 := time.Now()
		preds := core.Predictions(space, env.GT, *k)
		if len(preds) == 0 {
			return 0, fmt.Errorf("no predictions")
		}
		return float64(len(preds)) / time.Since(t0).Seconds(), nil
	}
	space.MaxProcs = 1
	rep.Metrics.ClassifyPredsPerSSerial = best(*iters, classifyRate)
	space.MaxProcs = 0
	rep.Metrics.ClassifyPredsPerS = best(*iters, classifyRate)
	fmt.Printf("classify LOO:   %12.0f preds/s  (serial %0.f, x%.2f)\n",
		rep.Metrics.ClassifyPredsPerS, rep.Metrics.ClassifyPredsPerSSerial,
		rep.Metrics.ClassifyPredsPerS/rep.Metrics.ClassifyPredsPerSSerial)

	// Silhouette; throughput counted in pairwise cells (the n² matrix the
	// naive algorithm would materialise).
	assign := core.Cluster(space, 3, *seed).Assign
	cells := float64(space.Len()) * float64(space.Len())
	silRate := func() (float64, error) {
		t0 := time.Now()
		if sil := cluster.Silhouette(space, assign); len(sil) != space.Len() {
			return 0, fmt.Errorf("silhouette length mismatch")
		}
		return cells / time.Since(t0).Seconds(), nil
	}
	space.MaxProcs = 1
	rep.Metrics.SilhouetteCellsPerSSerial = best(*iters, silRate)
	space.MaxProcs = 0
	rep.Metrics.SilhouetteCellsPerS = best(*iters, silRate)
	fmt.Printf("silhouette:     %12.0f cells/s  (serial %0.f, x%.2f)\n",
		rep.Metrics.SilhouetteCellsPerS, rep.Metrics.SilhouetteCellsPerSSerial,
		rep.Metrics.SilhouetteCellsPerS/rep.Metrics.SilhouetteCellsPerSSerial)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s (total %s)\n", *out, time.Since(start).Round(time.Millisecond))
}

// best runs fn iters times and keeps the highest throughput — the standard
// best-of-N discipline that filters scheduler noise out of rate measurements.
func best(iters int, fn func() (float64, error)) float64 {
	var top float64
	for i := 0; i < iters; i++ {
		rate, err := fn()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchperf:", err)
			os.Exit(1)
		}
		if rate > top {
			top = rate
		}
	}
	return top
}
