package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"github.com/darkvec/darkvec/internal/apiserver"
	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/embed"
	"github.com/darkvec/darkvec/internal/experiments"
	"github.com/darkvec/darkvec/internal/federation"
	"github.com/darkvec/darkvec/internal/intern"
	"github.com/darkvec/darkvec/internal/knn"
)

// benchFleet is the 3-vantage federation bench rig: three HTTP vantage
// stand-ins (real intern-export handlers over real tables, canned classify
// answers precomputed from the real model) and a real aggregator in front.
// Both federation metrics run against the exact client/aggregator code
// darkfed ships, so what's measured is the federation machinery plus the
// HTTP hops, not the (already separately benchmarked) k-NN.
type benchFleet struct {
	servers  []*httptest.Server
	clients  []*federation.Client
	front    *httptest.Server
	queries  []string
	tableLen int
}

func newBenchFleet(env *experiments.Env, space *embed.Space, k int) *benchFleet {
	f := &benchFleet{}
	names := []string{"north", "south", "west"}

	// Every vantage's intern table holds the full sender population — the
	// worst-case (fully overlapping) merge volume.
	senders := make([]string, 0, len(space.Words))
	for ip := range env.Full.SenderCounts() {
		senders = append(senders, ip.String())
	}
	sort.Strings(senders)
	f.tableLen = len(senders)

	// Canned classify answers from the real LOO predictions; each sender is
	// known to 2 of the 3 vantages, so every federated query exercises both
	// the merge and the unknown-sender path.
	preds := map[string]knn.Prediction{}
	for _, p := range core.Predictions(space, env.GT, k) {
		preds[p.Word] = p
	}
	shard := make([]map[string]knn.Prediction, 3)
	for i := range shard {
		shard[i] = map[string]knn.Prediction{}
	}
	i := 0
	for w, p := range preds {
		shard[i%3][w] = p
		shard[(i+1)%3][w] = p
		if i%5 == 0 {
			f.queries = append(f.queries, w)
		}
		i++
	}
	sort.Strings(f.queries)

	var cfgs []federation.VantageConfig
	for vi, name := range names {
		table := intern.New()
		for _, s := range senders {
			table.Intern(s)
		}
		mine := shard[vi]
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz/ready", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, `{"status":"ready"}`)
		})
		mux.Handle("GET /v1/intern", federation.NewInternHandler(federation.InternSource{
			Vantage: name, Epoch: federation.NewEpoch(), Table: table,
			Generation: func() string { return "v000001" },
		}))
		mux.HandleFunc("GET /v1/classify", func(w http.ResponseWriter, r *http.Request) {
			p, ok := mine[r.URL.Query().Get("ip")]
			w.Header().Set("Content-Type", "application/json")
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				fmt.Fprintln(w, `{"error":"sender not in embedding"}`)
				return
			}
			_ = json.NewEncoder(w).Encode(apiserver.ClassifyResponse{
				IP: p.Word, Class: p.Label, Support: p.Support, AvgSim: p.AvgSim,
			})
		})
		srv := httptest.NewServer(mux)
		f.servers = append(f.servers, srv)
		f.clients = append(f.clients, federation.NewClient(name, srv.URL, federation.ClientConfig{
			Timeout: 5 * time.Second,
		}))
		cfgs = append(cfgs, federation.VantageConfig{Name: name, URL: srv.URL})
	}

	agg, err := federation.NewAggregator(federation.Config{
		Vantages: cfgs, Poll: time.Hour, Timeout: 5 * time.Second, K: k,
		Logf: func(string, ...any) {},
	})
	if err != nil {
		panic(err)
	}
	agg.PollNow(context.Background())
	f.front = httptest.NewServer(agg)
	return f
}

// mergeOnce cold-syncs all three vantage intern mirrors in parallel — the
// admission work the aggregator performs when a fleet (re)starts.
func (f *benchFleet) mergeOnce() (float64, error) {
	ctx := context.Background()
	t0 := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(f.clients))
	for i, c := range f.clients {
		wg.Add(1)
		go func(i int, c *federation.Client) {
			defer wg.Done()
			synced, _, err := c.SyncIntern(ctx, "", nil)
			if err == nil && len(synced) != f.tableLen {
				err = fmt.Errorf("synced %d of %d senders", len(synced), f.tableLen)
			}
			errs[i] = err
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// queryP99 runs n sequential federated classifies per round and returns the
// lowest p99 latency (ms) across rounds.
func (f *benchFleet) queryP99(rounds, n int) (float64, error) {
	var best float64
	client := &http.Client{Timeout: 10 * time.Second}
	for r := 0; r < rounds; r++ {
		lat := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			q := f.queries[i%len(f.queries)]
			t0 := time.Now()
			resp, err := client.Get(f.front.URL + "/v1/federated/classify?ip=" + q)
			if err != nil {
				return 0, err
			}
			code := resp.StatusCode
			_, _ = io.Copy(io.Discard, resp.Body) // drain so keep-alive reuses the conn
			resp.Body.Close()
			if code != http.StatusOK {
				return 0, fmt.Errorf("federated classify %s -> %d", q, code)
			}
			lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
		}
		sort.Float64s(lat)
		p99 := lat[(len(lat)*99+99)/100-1]
		if r == 0 || p99 < best {
			best = p99
		}
	}
	return best, nil
}

func (f *benchFleet) close() {
	f.front.Close()
	for _, s := range f.servers {
		s.Close()
	}
}
