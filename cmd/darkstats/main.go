// Command darkstats prints dataset statistics of a darknet trace: the
// paper's Table 1 numbers, port ranking, sender activity distribution and
// cumulative sender growth (Figures 1–2 data).
//
// Usage:
//
//	darkstats -in trace.csv [-top 14]
//	darkstats -in capture.pcap [-maxerr 100]
//
// -maxerr N ingests dirty inputs in skip-and-count mode, tolerating up to
// N malformed records; the ingest report is printed either way.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/darkvec/darkvec/internal/trace"
)

func main() {
	var (
		in     = flag.String("in", "", "input trace (.csv or .pcap)")
		top    = flag.Int("top", 14, "top ports to list")
		maxErr = flag.Int64("maxerr", 0, "tolerate up to N malformed input records (0 = strict)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *top, *maxErr); err != nil {
		fmt.Fprintln(os.Stderr, "darkstats:", err)
		os.Exit(1)
	}
}

func run(in string, top int, maxErr int64) error {
	if maxErr < 0 {
		return fmt.Errorf("invalid -maxerr %d: must be >= 0", maxErr)
	}
	tr, rep, err := trace.ReadFile(in, maxErr)
	if err != nil {
		return err
	}
	fmt.Println(rep.String())
	s := tr.Summary(3)
	fmt.Printf("trace      %s .. %s (%d days)\n", s.FirstDay, s.LastDay, tr.Days())
	fmt.Printf("sources    %d\n", s.Sources)
	fmt.Printf("packets    %d\n", s.Packets)
	fmt.Printf("ports      %d\n", s.Ports)

	active := tr.ActiveSenders(10)
	counts := tr.SenderCounts()
	oneShot := 0
	for _, c := range counts {
		if c == 1 {
			oneShot++
		}
	}
	fmt.Printf("active     %d (%.1f%%), one-shot %d (%.1f%%)\n",
		len(active), 100*float64(len(active))/float64(len(counts)),
		oneShot, 100*float64(oneShot)/float64(len(counts)))

	fmt.Printf("\ntop %d ports by packets:\n", top)
	for i, p := range tr.TopPorts(top, 0) {
		fmt.Printf("%3d  %-10s %9d pkts  %5.2f%%  %6d sources\n",
			i+1, p.Key, p.Packets, p.TrafficShare*100, p.Sources)
	}

	fmt.Println("\ncumulative distinct senders (unfiltered / active):")
	unf := tr.CumulativeSenders(1)
	fil := tr.CumulativeSenders(10)
	for d := range unf {
		fmt.Printf("  day %2d  %8d  %8d\n", d+1, unf[d], fil[d])
	}
	return nil
}
