package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/darkvec/darkvec/internal/darksim"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	out := darksim.Generate(darksim.Config{Seed: 2, Days: 2, Scale: 0.005, Rate: 0.05})
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := out.Trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnCSV(t *testing.T) {
	path := writeTestTrace(t)
	if err := run(path, 5, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnPCAP(t *testing.T) {
	out := darksim.Generate(darksim.Config{Seed: 2, Days: 2, Scale: 0.005, Rate: 0.05})
	path := filepath.Join(t.TempDir(), "t.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Trace.WritePCAP(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(path, 3, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/does/not/exist.csv", 5, 0); err == nil {
		t.Fatal("missing input must fail")
	}
}

func TestLoadTraceBadFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.csv")
	if err := os.WriteFile(path, []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 5, 0); err == nil {
		t.Fatal("junk csv must fail")
	}
}

// TestRunTruncatedPCAP: a capture cut mid-record is rejected strictly but
// summarised from its intact prefix under -maxerr.
func TestRunTruncatedPCAP(t *testing.T) {
	out := darksim.Generate(darksim.Config{Seed: 2, Days: 2, Scale: 0.005, Rate: 0.05})
	full := filepath.Join(t.TempDir(), "full.pcap")
	f, err := os.Create(full)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Trace.WritePCAP(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.pcap")
	if err := os.WriteFile(cut, raw[:len(raw)-30], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cut, 3, 0); err == nil {
		t.Fatal("strict ingest of truncated capture must fail")
	}
	if err := run(cut, 3, 1); err != nil {
		t.Fatalf("tolerant ingest of truncated capture: %v", err)
	}
}
