package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/darkvec/darkvec/internal/darksim"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	out := darksim.Generate(darksim.Config{Seed: 2, Days: 2, Scale: 0.005, Rate: 0.05})
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := out.Trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnCSV(t *testing.T) {
	path := writeTestTrace(t)
	if err := run(path, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnPCAP(t *testing.T) {
	out := darksim.Generate(darksim.Config{Seed: 2, Days: 2, Scale: 0.005, Rate: 0.05})
	path := filepath.Join(t.TempDir(), "t.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Trace.WritePCAP(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(path, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/does/not/exist.csv", 5); err == nil {
		t.Fatal("missing input must fail")
	}
}

func TestLoadTraceBadFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.csv")
	if err := os.WriteFile(path, []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrace(path); err == nil {
		t.Fatal("junk csv must fail")
	}
}
