// Command experiments regenerates the paper's tables and figures on the
// synthetic darknet and prints them in paper-style rows (optionally
// exporting CSV per experiment).
//
// Usage:
//
//	experiments -exp all [-scale 0.05] [-rate 0.1] [-days 30] [-epochs 5] [-csv out/]
//	experiments -exp table3
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/darkvec/darkvec/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		days   = flag.Int("days", 30, "trace length in days")
		scale  = flag.Float64("scale", 0.05, "population scale")
		rate   = flag.Float64("rate", 0.10, "packet rate scale")
		dim    = flag.Int("dim", 50, "embedding dimension V")
		window = flag.Int("window", 25, "context window c")
		epochs = flag.Int("epochs", 5, "training epochs")
		seed   = flag.Uint64("seed", 1, "run seed")
		csvDir = flag.String("csv", "", "directory for per-experiment CSV exports")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		return
	}
	if err := run(*exp, experiments.Options{
		Seed: *seed, Days: *days, Scale: *scale, Rate: *rate,
		Dim: *dim, Window: *window, Epochs: *epochs,
	}, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, opts experiments.Options, csvDir string) error {
	var runners []experiments.Runner
	if exp == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(exp, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			runners = append(runners, r)
		}
	}
	start := time.Now()
	fmt.Printf("generating dataset (days=%d scale=%g rate=%g seed=%d)...\n",
		opts.Days, opts.Scale, opts.Rate, opts.Seed)
	env := experiments.NewEnv(opts)
	fmt.Printf("dataset ready in %s: %d events, %d sources, %d active\n\n",
		time.Since(start).Round(time.Millisecond), env.Full.Len(),
		len(env.Full.SenderCounts()), len(env.Active))

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, r := range runners {
		t0 := time.Now()
		res, err := r.Run(env)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Print(res.Render())
		fmt.Printf("(%s in %s)\n\n", r.ID, time.Since(t0).Round(time.Millisecond))
		if csvDir != "" {
			path := filepath.Join(csvDir, strings.ReplaceAll(r.ID, "/", "-")+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := res.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("total runtime: %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}
