package main

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestValidatePprof(t *testing.T) {
	for _, addr := range []string{"", "127.0.0.1:6060", "127.0.0.1:0", "localhost:6060", "[::1]:6060"} {
		o := baseOpts("trace.csv")
		o.pprofAddr = addr
		if err := o.validate(); err != nil {
			t.Errorf("pprof %q rejected: %v", addr, err)
		}
	}
	// Anything that could route off-host is refused: profiles expose heap
	// contents and must stay on loopback.
	for _, addr := range []string{"6060", "0.0.0.0:6060", ":6060", "10.1.2.3:6060", "example.com:6060", "[::]:6060"} {
		o := baseOpts("trace.csv")
		o.pprofAddr = addr
		if err := o.validate(); err == nil {
			t.Errorf("pprof %q accepted, want loopback-only rejection", addr)
		}
	}
}

// TestPprofEndpoint boots the daemon with -pprof and checks the profiling
// mux answers on its own listener, separate from the API.
func TestPprofEndpoint(t *testing.T) {
	tracePath, _ := writeTestTrace(t, t.TempDir())
	o := baseOpts(tracePath)
	o.pprofAddr = "127.0.0.1:0"
	pprofCh := make(chan string, 1)
	o.onPprofListen = func(addr string) { pprofCh <- addr }
	readyCh := make(chan string, 1)
	o.onReady = func(addr string) { readyCh <- addr }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, o) }()

	var paddr string
	select {
	case paddr = <-pprofCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before pprof bind: %v", err)
	case <-time.After(time.Minute):
		t.Fatal("pprof listener never bound")
	}
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/heap"} {
		resp, err := http.Get("http://" + paddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}

	select {
	case <-readyCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon never became ready")
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}
