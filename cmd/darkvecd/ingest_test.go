package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/darkvec/darkvec/internal/darksim"
	"github.com/darkvec/darkvec/internal/stream"
	"github.com/darkvec/darkvec/internal/trace"
)

// liveOpts is baseOpts reconfigured as a live daemon: no input file, a TCP
// ingest listener, and a fast retrain cadence.
func liveOpts() options {
	o := baseOpts("")
	o.in = ""
	o.ingest = "127.0.0.1:0"
	o.retrain = 50 * time.Millisecond
	o.ingestMin = 50
	o.ingestMinPkts = 1
	o.ingestStall = time.Hour // stall detection off unless a test wants it
	return o
}

// startLive boots a live daemon and returns its HTTP and ingest addresses
// plus channels for readiness and exit.
func startLive(t *testing.T, ctx context.Context, o options) (httpAddr, ingestAddr string, readyCh chan string, runErr chan error) {
	t.Helper()
	listenCh := make(chan string, 1)
	ingestCh := make(chan string, 1)
	readyCh = make(chan string, 1)
	o.onListen = func(addr string) { listenCh <- addr }
	o.onIngestListen = func(addr string) { ingestCh <- addr }
	o.onReady = func(addr string) { readyCh <- addr }
	runErr = make(chan error, 1)
	go func() { runErr <- run(ctx, o) }()
	select {
	case httpAddr = <-listenCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never bound its HTTP listener")
	}
	select {
	case ingestAddr = <-ingestCh:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never bound its ingest listener")
	}
	return httpAddr, ingestAddr, readyCh, runErr
}

// streamTrace firehoses a trace's events into an ingest listener over the
// CSV line protocol, header first (as `nc addr < trace.csv` would).
func streamTrace(t *testing.T, addr string, tr *trace.Trace) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	fmt.Fprintf(bw, "%s\n", trace.CSVHeaderLine)
	var buf []byte
	for _, e := range tr.Events {
		buf = append(e.AppendCSV(buf[:0]), '\n')
		if _, err := bw.Write(buf); err != nil {
			t.Fatalf("stream interrupted: %v", err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
}

func getIngestStats(t *testing.T, base string) stream.Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/ingest")
	if err != nil {
		t.Fatalf("/v1/ingest: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/ingest status = %d", resp.StatusCode)
	}
	var st stream.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/v1/ingest decode: %v", err)
	}
	return st
}

func TestValidateLiveFlags(t *testing.T) {
	good := liveOpts()
	if err := good.validate(); err != nil {
		t.Fatalf("valid live options rejected: %v", err)
	}
	// Live retraining does not demand a model store.
	if good.store != "" {
		t.Fatal("test premise: liveOpts must be storeless")
	}
	cases := []struct {
		name   string
		mutate func(*options)
	}{
		{"live without retrain", func(o *options) { o.retrain = 0 }},
		{"bad policy", func(o *options) { o.ingestPolicy = "newest-first" }},
		{"negative cap", func(o *options) { o.ingestCap = -1 }},
		{"negative queue", func(o *options) { o.ingestQueue = -1 }},
		{"negative ingestmin", func(o *options) { o.ingestMin = -1 }},
		{"negative minpkts", func(o *options) { o.ingestMinPkts = -1 }},
		{"negative rate", func(o *options) { o.ingestRate = -1 }},
	}
	for _, tc := range cases {
		o := liveOpts()
		tc.mutate(&o)
		if err := o.validate(); err == nil {
			t.Errorf("%s: validate() accepted %+v", tc.name, o)
		}
	}
	// No input and no live source is still an error.
	o := liveOpts()
	o.ingest = ""
	if err := o.validate(); err == nil {
		t.Error("no -in and no live source accepted")
	}
}

// TestLiveIngestLifecycle boots a storeless live daemon on an empty window,
// feeds it a synthetic day over TCP, and watches the whole arc: deferred
// first training, readiness once the window fills, accurate /v1/ingest
// accounting, and a SIGTERM drain that flushes the window for the next
// boot to seed from.
func TestLiveIngestLifecycle(t *testing.T) {
	dir := t.TempDir()
	o := liveOpts()
	o.flush = filepath.Join(dir, "window.csv")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	httpAddr, ingestAddr, readyCh, runErr := startLive(t, ctx, o)
	base := "http://" + httpAddr

	// Before any events: alive, not ready, but ingest accounting answers.
	if resp, err := http.Get(base + "/healthz/ready"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readiness on empty window: %v, %v (want 503)", resp, err)
	} else {
		resp.Body.Close()
	}
	if st := getIngestStats(t, base); st.Accepted != 0 || st.Window.Events != 0 {
		t.Fatalf("fresh daemon ingest stats = %+v, want zeros", st)
	}

	res := darksim.Generate(darksim.Config{Seed: 3, Days: 1, Scale: 0.005, Rate: 0.05})
	streamTrace(t, ingestAddr, res.Trace)

	select {
	case <-readyCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("live daemon never became ready")
	}
	if resp, err := http.Get(base + "/v1/stats"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats after live training: %v, %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// Every streamed event must eventually be parsed and accepted: no
	// hidden losses on the happy path.
	want := int64(res.Trace.Len())
	deadline := time.Now().Add(30 * time.Second)
	var st stream.Stats
	for time.Now().Before(deadline) {
		st = getIngestStats(t, base)
		if st.Accepted+st.DroppedNewest+st.DroppedOldest == want {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Parse.Read != want {
		t.Errorf("parse.read = %d, want %d", st.Parse.Read, want)
	}
	if got := st.Accepted + st.DroppedNewest + st.DroppedOldest; got != want {
		t.Errorf("accounting: accepted %d + dropped %d+%d = %d, want %d",
			st.Accepted, st.DroppedNewest, st.DroppedOldest, got, want)
	}
	if st.TotalConns != 1 || st.Parse.Skipped != 0 {
		t.Errorf("conns=%d skipped=%d, want 1 conn, 0 quarantined", st.TotalConns, st.Parse.Skipped)
	}

	windowLen := st.Window.Events
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}

	// The drain flushed the window; the flush must re-seed a boot.
	tr, _, err := trace.ReadFile(o.flush, 0)
	if err != nil {
		t.Fatalf("flush file unreadable: %v", err)
	}
	if tr.Len() < windowLen {
		t.Errorf("flush holds %d events, window held at least %d", tr.Len(), windowLen)
	}

	// A second boot seeds from the flush: with the window pre-filled past
	// -ingestmin, training happens on the boot path and readiness arrives
	// without a single live event.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	httpAddr2, _, readyCh2, runErr2 := startLive(t, ctx2, o)
	select {
	case <-readyCh2:
	case err := <-runErr2:
		t.Fatalf("re-boot exited before ready: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("re-boot from flush never became ready")
	}
	if st := getIngestStats(t, "http://"+httpAddr2); st.Window.Events < o.ingestMin {
		t.Errorf("re-boot window = %d events, want >= %d (seeded from flush)", st.Window.Events, o.ingestMin)
	}
	cancel2()
	if err := <-runErr2; err != nil {
		t.Fatalf("re-boot shutdown: %v", err)
	}
}

// TestLiveIngestOverloadSoak is the acceptance soak: a firehose far past
// the pipeline's capacity (small queue, rolling retrains) while HTTP
// clients hammer the API. The daemon must never drop an HTTP request, the
// window must respect its cap, the drop accounting must balance exactly,
// and the drain must leak no goroutines.
func TestLiveIngestOverloadSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	tracePath, _ := writeTestTrace(t, t.TempDir())
	o := liveOpts()
	o.logf = t.Logf
	o.in = tracePath   // deterministic boot-path readiness before the flood
	o.ingestQueue = 64 // tiny hand-off queue: the overload must shed, with exact books
	o.ingestCap = 32768
	o.drain = 20 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	httpAddr, ingestAddr, readyCh, runErr := startLive(t, ctx, o)
	base := "http://" + httpAddr

	res := darksim.Generate(darksim.Config{Seed: 5, Days: 2, Scale: 0.01, Rate: 0.1})
	total := int64(res.Trace.Len())
	if total < 5000 {
		t.Fatalf("soak trace too small: %d events", total)
	}

	// Overload: several uncoordinated firehose writers, each streaming two
	// full days as fast as TCP accepts them — many times the queue's
	// capacity while retrains churn in the background.
	const writers = 4
	var streamWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		streamWG.Add(1)
		go func() {
			defer streamWG.Done()
			streamTrace(t, ingestAddr, res.Trace)
		}()
	}

	select {
	case <-readyCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon never became ready under load")
	}

	// Hammer the API for the duration of the stream: zero dropped
	// requests allowed.
	client := &http.Client{Timeout: 30 * time.Second}
	var stop atomic.Bool
	var reqs atomic.Int64
	hammerErrs := make(chan error, 64)
	var hammerWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		hammerWG.Add(1)
		go func() {
			defer hammerWG.Done()
			paths := []string{"/v1/stats", "/v1/ingest", "/healthz/ready"}
			for j := 0; !stop.Load(); j++ {
				resp, err := client.Get(base + paths[j%len(paths)])
				if err != nil {
					hammerErrs <- fmt.Errorf("dropped request: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					hammerErrs <- fmt.Errorf("%s = %d mid-soak", paths[j%len(paths)], resp.StatusCode)
					return
				}
				reqs.Add(1)
			}
		}()
	}

	streamWG.Wait()
	// Let the queue drain, then stop the hammer.
	want := writers * total
	deadline := time.Now().Add(60 * time.Second)
	var st stream.Stats
	for time.Now().Before(deadline) {
		st = getIngestStats(t, base)
		if st.Parse.Read == want && st.QueueDepth == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	stop.Store(true)
	hammerWG.Wait()
	t.Logf("hammer done at %s", time.Now().Format("15:04:05.000"))
	close(hammerErrs)
	for err := range hammerErrs {
		t.Error(err)
	}
	if reqs.Load() == 0 {
		t.Error("hammer made no successful requests")
	}

	if st.Parse.Read != want {
		t.Errorf("parse.read = %d, want %d", st.Parse.Read, want)
	}
	if got := st.Accepted + st.DroppedNewest + st.DroppedOldest; got != want {
		t.Errorf("accounting: accepted %d + dropped %d+%d = %d, want %d",
			st.Accepted, st.DroppedNewest, st.DroppedOldest, got, want)
	}
	if st.Window.Events > o.ingestCap {
		t.Errorf("window %d exceeds -ingestcap %d", st.Window.Events, o.ingestCap)
	}

	// Retire the hammer's keep-alive connections before pulling the plug
	// so the drain only has to wait for genuinely in-flight work.
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit after soak")
	}
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline+2 {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines leaked after drain: %d -> %d\n%s", baseline, n, buf[:runtime.Stack(buf, true)])
	}
}

// TestLiveIngestStallDegrades seeds a live daemon from a static trace so
// it is ready immediately, then lets the feed stay silent past the stall
// threshold: every response must carry the staleness headers and readiness
// must flip to degraded, recovering as soon as one event arrives.
func TestLiveIngestStallDegrades(t *testing.T) {
	tracePath, _ := writeTestTrace(t, t.TempDir())
	o := liveOpts()
	o.in = tracePath // seeds the window: boot-path training, instant readiness
	o.ingestStall = 300 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	httpAddr, ingestAddr, readyCh, runErr := startLive(t, ctx, o)
	base := "http://" + httpAddr
	select {
	case <-readyCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("seeded live daemon never became ready")
	}

	// Wait out the stall threshold with a silent feed.
	deadline := time.Now().Add(10 * time.Second)
	stalled := false
	for time.Now().Before(deadline) {
		if getIngestStats(t, base).Stalled {
			stalled = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !stalled {
		t.Fatal("silent feed never reported stalled")
	}
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats while stalled = %d, want 200 (keep serving)", resp.StatusCode)
	}
	if resp.Header.Get("X-DarkVec-Model-Stale") != "true" {
		t.Error("stalled feed: response missing X-DarkVec-Model-Stale: true")
	}
	if reason := resp.Header.Get("X-DarkVec-Model-Stale-Reason"); reason == "" {
		t.Error("stalled feed: response missing staleness reason header")
	}
	var ready map[string]any
	rresp, err := http.Get(base + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if ready["status"] != "degraded" || ready["ingest_stalled"] != true {
		t.Errorf("ready while stalled = %v, want degraded with ingest_stalled", ready)
	}

	// One event clears the stall.
	conn, err := net.Dial("tcp", ingestAddr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "1700000100,9.9.9.9,10.0.0.1,23,tcp,0\n")
	conn.Close()
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if !getIngestStats(t, base).Stalled {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp2, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-DarkVec-Model-Stale") == "true" {
		t.Error("staleness header still set after the feed recovered")
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestLiveIngestUnixSocketAndGarbage drives the unix-socket listener with
// a dirty feed: the -maxerr budget quarantines the garbage, good lines
// land, and /v1/ingest reports both truthfully.
func TestLiveIngestUnixSocketAndGarbage(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "d.sock")
	o := liveOpts()
	o.ingest = "unix:" + sock
	o.maxErr = 100
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	httpAddr, ingestAddr, _, runErr := startLive(t, ctx, o)
	if ingestAddr != sock {
		t.Fatalf("ingest listener at %q, want unix socket %q", ingestAddr, sock)
	}
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "%s\ntotal garbage\n%s\n%s\n",
		trace.CSVHeaderLine,
		"1700000000,1.2.3.4,10.0.0.1,23,tcp,0",
		"1700000001,1.2.3.5,10.0.0.1,2323,udp,0")
	conn.Close()
	base := "http://" + httpAddr
	deadline := time.Now().Add(10 * time.Second)
	var st stream.Stats
	for time.Now().Before(deadline) {
		st = getIngestStats(t, base)
		if st.Accepted == 2 && st.Parse.Skipped == 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Accepted != 2 || st.Parse.Skipped != 1 {
		t.Errorf("stats = accepted %d, skipped %d; want 2 accepted, 1 quarantined", st.Accepted, st.Parse.Skipped)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
