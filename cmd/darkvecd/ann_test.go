package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"github.com/darkvec/darkvec/internal/apiserver"
	"github.com/darkvec/darkvec/internal/embed"
	"github.com/darkvec/darkvec/internal/trace"
)

// annDaemon boots a daemon (reusing the store_test harness) and returns
// its base URL plus a shutdown func.
func annDaemon(t *testing.T, o options) (string, func()) {
	t.Helper()
	base, cancel, runErr := startDaemon(t, o)
	return base, func() { stopDaemon(t, cancel, runErr) }
}

func fetchJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// servedIP finds a last-day sender that made it into the serving space
// (training's min-count filter drops rare senders, so not every trace
// event's source is servable).
func servedIP(t *testing.T, base string, tr *trace.Trace) string {
	t.Helper()
	seen := map[string]bool{}
	for _, ev := range tr.LastDays(1).Events {
		ip := ev.Src.String()
		if seen[ip] {
			continue
		}
		seen[ip] = true
		resp, err := http.Get(base + "/v1/sender?ip=" + ip)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return ip
		}
	}
	t.Fatal("no last-day sender found in the serving space")
	return ""
}

// TestANNValidation pins the flag validation for the ANN knobs.
func TestANNValidation(t *testing.T) {
	o := baseOpts("trace.csv")
	o.ann = "sometimes"
	if err := o.validate(); err == nil {
		t.Fatal("bad -ann mode must fail validation")
	}
	o = baseOpts("trace.csv")
	o.annCells = -1
	if err := o.validate(); err == nil {
		t.Fatal("negative -anncells must fail validation")
	}
	o = baseOpts("trace.csv")
	o.annProbe = -1
	if err := o.validate(); err == nil {
		t.Fatal("negative -annprobe must fail validation")
	}
	for _, mode := range []string{"", "auto", "on", "off"} {
		o = baseOpts("trace.csv")
		o.ann = mode
		if err := o.validate(); err != nil {
			t.Fatalf("-ann %q should validate: %v", mode, err)
		}
	}
}

// TestANNAutoSelection pins annWanted: auto rides the -annmin threshold,
// on/off override it in both directions.
func TestANNAutoSelection(t *testing.T) {
	o := baseOpts("t")
	o.ann, o.annMin = "auto", 1000
	if o.annWanted(999) || !o.annWanted(1000) {
		t.Fatal("auto mode must flip exactly at -annmin")
	}
	o.ann = "on"
	if !o.annWanted(1) {
		t.Fatal("-ann on must build at any size")
	}
	o.ann = "off"
	if o.annWanted(1 << 20) {
		t.Fatal("-ann off must never build")
	}
	o.ann, o.annMin = "auto", 0
	if o.annWanted(1 << 20) {
		t.Fatal("auto with -annmin 0 must never build (0 disables the threshold)")
	}
}

// TestDaemonServesANN boots a daemon with -ann on and checks the serving
// contract end to end: /v1/model reports mode ivf with index stats, and
// similarity + classification answer through the index.
func TestDaemonServesANN(t *testing.T) {
	tracePath, tr := writeTestTrace(t, t.TempDir())
	o := baseOpts(tracePath)
	o.ann = "on"
	o.annQuant = true
	base, shutdown := annDaemon(t, o)
	defer shutdown()

	var model apiserver.ModelResponse
	if code := fetchJSON(t, base+"/v1/model", &model); code != http.StatusOK {
		t.Fatalf("/v1/model = %d", code)
	}
	if model.KNNMode != "ivf" || model.Index == nil {
		t.Fatalf("model = %+v, want ivf with index stats", model)
	}
	if model.Index.CalibratedRecall < model.Index.TargetRecall {
		t.Fatalf("index calibration %.3f below target %.3f", model.Index.CalibratedRecall, model.Index.TargetRecall)
	}
	if !model.Index.Quantized || model.Index.QuantizedBytes == 0 {
		t.Fatalf("quantized sidecar missing: %+v", model.Index)
	}
	if model.ANNError != "" {
		t.Fatalf("unexpected ann_error %q", model.ANNError)
	}

	// A last-day sender answers both query shapes through the index.
	ip := servedIP(t, base, tr)
	var sim apiserver.SimilarResponse
	if code := fetchJSON(t, base+"/v1/similar?ip="+ip+"&k=5", &sim); code != http.StatusOK {
		t.Fatalf("/v1/similar = %d", code)
	}
	if len(sim.Neighbors) == 0 {
		t.Fatal("no neighbours through the index")
	}
	var cls apiserver.ClassifyResponse
	if code := fetchJSON(t, base+"/v1/classify?ip="+ip+"&k=5", &cls); code != http.StatusOK {
		t.Fatalf("/v1/classify = %d", code)
	}
	if cls.Class == "" || cls.Support == 0 {
		t.Fatalf("degenerate classification through the index: %+v", cls)
	}

	// Healthy daemon: ready, no ann degradation.
	var ready map[string]any
	if code := fetchJSON(t, base+"/healthz/ready", &ready); code != http.StatusOK {
		t.Fatalf("/healthz/ready = %d", code)
	}
	if ready["status"] != "ready" {
		t.Fatalf("ready status = %v", ready["status"])
	}
}

// TestDaemonANNBuildFailureDegrades injects a build failure: the daemon
// must serve the generation exactly (zero refused queries), report mode
// exact with the error on /v1/model, and flag ann_degraded on readiness.
func TestDaemonANNBuildFailureDegrades(t *testing.T) {
	tracePath, tr := writeTestTrace(t, t.TempDir())
	o := baseOpts(tracePath)
	o.ann = "on"
	o.annBuild = func(*embed.Space, embed.IVFOptions) (*embed.IVF, error) {
		return nil, errors.New("synthetic index failure")
	}
	base, shutdown := annDaemon(t, o)
	defer shutdown()

	var model apiserver.ModelResponse
	if code := fetchJSON(t, base+"/v1/model", &model); code != http.StatusOK {
		t.Fatalf("/v1/model = %d", code)
	}
	if model.KNNMode != "exact" || model.Index != nil {
		t.Fatalf("degraded daemon must serve exact: %+v", model)
	}
	if model.ANNError != "synthetic index failure" {
		t.Fatalf("ann_error = %q", model.ANNError)
	}

	// Queries still answer — degradation, never refusal.
	ip := servedIP(t, base, tr)
	var sim apiserver.SimilarResponse
	if code := fetchJSON(t, base+"/v1/similar?ip="+ip+"&k=5", &sim); code != http.StatusOK {
		t.Fatalf("/v1/similar while degraded = %d", code)
	}
	if len(sim.Neighbors) == 0 {
		t.Fatal("degraded daemon returned no neighbours")
	}

	var ready map[string]any
	fetchJSON(t, base+"/healthz/ready", &ready)
	if ready["status"] != "degraded" {
		t.Fatalf("ready status = %v, want degraded", ready["status"])
	}
	reasons, _ := ready["degraded_reasons"].([]any)
	found := false
	for _, r := range reasons {
		if r == "ann_degraded" {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded_reasons = %v, want ann_degraded", reasons)
	}
	if ready["ann_error"] != "synthetic index failure" {
		t.Fatalf("ready ann_error = %v", ready["ann_error"])
	}
}

// TestDaemonANNOffStaysExact: the default auto mode below threshold (and
// explicit off) serve exact with no index block and no degradation.
func TestDaemonANNOffStaysExact(t *testing.T) {
	tracePath, _ := writeTestTrace(t, t.TempDir())
	o := baseOpts(tracePath)
	o.ann = "off"
	base, shutdown := annDaemon(t, o)
	defer shutdown()

	var model apiserver.ModelResponse
	if code := fetchJSON(t, base+"/v1/model", &model); code != http.StatusOK {
		t.Fatalf("/v1/model = %d", code)
	}
	if model.KNNMode != "exact" || model.Index != nil || model.ANNError != "" {
		t.Fatalf("model = %+v, want plain exact", model)
	}
	var ready map[string]any
	if code := fetchJSON(t, base+"/healthz/ready", &ready); code != http.StatusOK {
		t.Fatalf("/healthz/ready = %d", code)
	}
	if ready["status"] != "ready" {
		t.Fatalf("ready status = %v", ready["status"])
	}
}
