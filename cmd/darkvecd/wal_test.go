package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/packet"
	"github.com/darkvec/darkvec/internal/robust/faultio"
	"github.com/darkvec/darkvec/internal/stream"
	"github.com/darkvec/darkvec/internal/trace"
	"github.com/darkvec/darkvec/internal/wal"
)

// walOpts is liveOpts with a WAL directory under dir and the zero-loss
// fsync policy.
func walOpts(dir string) options {
	o := liveOpts()
	o.wal = filepath.Join(dir, "wal")
	o.walFsync = "always"
	return o
}

// walTrace builds n deterministic events across 10 senders (dense enough
// per sender to clear the trainer's min-count), ts stepping by step seconds.
func walTrace(n int, step int64) *trace.Trace {
	events := make([]trace.Event, n)
	for i := range events {
		events[i] = trace.Event{
			Ts:    1700000000 + int64(i)*step,
			Src:   netutil.IPv4(0x0a000000 + uint32(i%10)),
			Dst:   netutil.IPv4(0xc0a80001),
			Port:  uint16(23 + i%3),
			Proto: packet.IPProtocolTCP,
		}
	}
	return trace.New(events)
}

// walIngestStats is /v1/ingest's WAL-extended shape.
type walIngestStats struct {
	stream.Stats
	WAL *struct {
		wal.Stats
		Replayed          int64 `json:"replayed"`
		ReplayQuarantined int64 `json:"replay_quarantined"`
	} `json:"wal"`
}

func getIngestWAL(t *testing.T, base string) walIngestStats {
	t.Helper()
	resp, err := http.Get(base + "/v1/ingest")
	if err != nil {
		t.Fatalf("/v1/ingest: %v", err)
	}
	defer resp.Body.Close()
	var st walIngestStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/v1/ingest decode: %v", err)
	}
	return st
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// newestSegment returns the highest-numbered segment file in the WAL dir.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (%v)", dir, err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// TestWALCrashReplayStorm is the kill -9 chaos arc: a WAL-backed daemon
// takes an ingest storm, dies abruptly (crash simulated by a torn tail cut
// into the on-disk log — the bytes a kill -9 mid-append leaves behind),
// and reboots. Recovery must truncate the torn record without refusing to
// boot, replay must rebuild the window, and /v1/ingest accounting must be
// exact: parsed = replayed + quarantined, with zero loss beyond the single
// torn record under -walfsync=always.
func TestWALCrashReplayStorm(t *testing.T) {
	dir := t.TempDir()
	o := walOpts(dir)
	const storm = 300

	ctx, cancel := context.WithCancel(context.Background())
	httpAddr, ingestAddr, _, runErr := startLive(t, ctx, o)
	base := "http://" + httpAddr
	streamTrace(t, ingestAddr, walTrace(storm, 1))
	waitFor(t, "storm accepted", func() bool { return getIngestStats(t, base).Accepted == storm })
	if st := getIngestWAL(t, base); st.WAL == nil || st.WAL.Appended != storm || st.WAL.Policy != "always" {
		t.Fatalf("pre-crash WAL stats: %+v", st.WAL)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("daemon A: %v", err)
	}

	// The kill -9 moment: the last record on disk is cut mid-payload.
	seg := newestSegment(t, o.wal)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	httpAddr2, _, _, runErr2 := startLive(t, ctx2, o)
	base2 := "http://" + httpAddr2
	st := getIngestWAL(t, base2)
	if st.WAL == nil {
		t.Fatal("rebooted daemon reports no WAL")
	}
	if st.WAL.TornTails != 1 {
		t.Errorf("torn tails = %d, want 1", st.WAL.TornTails)
	}
	// Zero loss beyond the torn record: 299 of 300 replayed, none quarantined.
	if st.WAL.Replayed != storm-1 || st.WAL.ReplayQuarantined != 0 {
		t.Errorf("replayed %d, quarantined %d; want %d and 0", st.WAL.Replayed, st.WAL.ReplayQuarantined, storm-1)
	}
	// parsed = replayed + quarantined, exact.
	if st.Parse.Read != st.WAL.Replayed || st.Parse.Skipped != st.WAL.ReplayQuarantined {
		t.Errorf("parse accounting: read %d skipped %d vs replayed %d quarantined %d",
			st.Parse.Read, st.Parse.Skipped, st.WAL.Replayed, st.WAL.ReplayQuarantined)
	}
	if st.Window.Events != storm-1 {
		t.Errorf("rebuilt window holds %d events, want %d", st.Window.Events, storm-1)
	}
	cancel2()
	if err := <-runErr2; err != nil {
		t.Fatalf("daemon B: %v", err)
	}
}

// TestWALPrecedenceOverFlush: when both a -flush seed and a WAL exist, the
// WAL wins — it is a superset of any clean-shutdown flush, and seeding
// both would double-count.
func TestWALPrecedenceOverFlush(t *testing.T) {
	dir := t.TempDir()
	o := walOpts(dir)

	// A flush file with 5 events...
	o.flush = filepath.Join(dir, "flush.csv")
	ff, err := os.Create(o.flush)
	if err != nil {
		t.Fatal(err)
	}
	if err := walTrace(5, 1).WriteCSV(ff); err != nil {
		t.Fatal(err)
	}
	ff.Close()

	// ...and a WAL with 3 different ones.
	log, err := wal.Open(o.wal, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range walTrace(3, 7).Events {
		if err := log.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	httpAddr, _, _, runErr := startLive(t, ctx, o)
	st := getIngestWAL(t, "http://"+httpAddr)
	if st.WAL == nil || st.WAL.Replayed != 3 {
		t.Fatalf("replayed = %+v, want 3", st.WAL)
	}
	if st.Window.Events != 3 {
		t.Errorf("window holds %d events, want 3 (WAL must supersede the flush seed)", st.Window.Events)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
}

// TestWALReplayQuarantineBudget: a CRC-intact record whose payload is not
// an event goes through the shared quarantine budget, and the accounting
// still closes: parsed = replayed + quarantined.
func TestWALReplayQuarantineBudget(t *testing.T) {
	dir := t.TempDir()
	o := walOpts(dir)
	o.maxErr = 2

	log, err := wal.Open(o.wal, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range walTrace(3, 1).Events {
		if err := log.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a validly framed garbage record by hand.
	f, err := os.OpenFile(newestSegment(t, o.wal), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("not an event, but the frame is fine")
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	if _, err := f.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	httpAddr, _, _, runErr := startLive(t, ctx, o)
	st := getIngestWAL(t, "http://"+httpAddr)
	if st.WAL == nil || st.WAL.Replayed != 3 || st.WAL.ReplayQuarantined != 1 {
		t.Fatalf("replayed/quarantined = %+v, want 3/1", st.WAL)
	}
	if st.Parse.Read != 3 || st.Parse.Skipped != 1 {
		t.Errorf("parse accounting: read %d skipped %d, want 3 and 1", st.Parse.Read, st.Parse.Skipped)
	}
	if st.Window.Events != 3 {
		t.Errorf("window holds %d events, want 3", st.Window.Events)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
}

// TestWALDegradedReason: a WAL whose fsync barrier fails keeps the daemon
// serving — events still reach the window — but /healthz/ready must list
// wal_degraded, name-sorted with the other active causes.
func TestWALDegradedReason(t *testing.T) {
	dir := t.TempDir()
	o := walOpts(dir)
	o.ingestStall = 200 * time.Millisecond // trip a second cause alongside
	o.walWrap = func(w wal.SyncWriter) wal.SyncWriter {
		return faultio.ErrSyncAfter(w, 0, errors.New("injected EIO"))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	httpAddr, ingestAddr, readyCh, runErr := startLive(t, ctx, o)
	base := "http://" + httpAddr
	streamTrace(t, ingestAddr, walTrace(120, 1))
	select {
	case <-readyCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon never became ready")
	}

	waitFor(t, "events applied despite failing WAL", func() bool {
		return getIngestStats(t, base).Accepted == 120
	})
	if st := getIngestStats(t, base); st.LogFailed == 0 {
		t.Fatalf("LogFailed = 0 with a failing fsync barrier: %+v", st)
	}
	waitFor(t, "degraded reasons", func() bool {
		body := readyBody(t, base)
		return hasReason(body, "wal_degraded") && hasReason(body, "ingest_stalled")
	})
	body := readyBody(t, base)
	if body["status"] != "degraded" {
		t.Errorf("status = %v, want degraded", body["status"])
	}
	list, _ := body["degraded_reasons"].([]any)
	names := make([]string, len(list))
	for i, r := range list {
		names[i] = fmt.Sprint(r)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("degraded_reasons not name-sorted: %v", names)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
}

// TestWALCompactionBoundedByWindowAge: segments whose newest event has
// aged past the window's hard age cap are deleted as the daemon runs, so
// the on-disk WAL tracks the window instead of growing forever.
func TestWALCompactionBoundedByWindowAge(t *testing.T) {
	dir := t.TempDir()
	o := walOpts(dir)
	o.walSeg = 256                 // rotate every handful of records
	o.ingestAge = 100 * time.Second // window age cap = compaction horizon

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	httpAddr, ingestAddr, _, runErr := startLive(t, ctx, o)
	base := "http://" + httpAddr

	// Stream in chunks so each lands in its own commit (and can rotate);
	// ts advances 10s per event, sweeping far past the 100s age cap.
	tr := walTrace(200, 10)
	for chunk := 0; chunk < 10; chunk++ {
		sub := trace.New(append([]trace.Event(nil), tr.Events[chunk*20:(chunk+1)*20]...))
		streamTrace(t, ingestAddr, sub)
		want := int64((chunk + 1) * 20)
		waitFor(t, "chunk accepted", func() bool { return getIngestStats(t, base).Accepted == want })
	}

	st := getIngestWAL(t, base)
	if st.WAL == nil || st.WAL.Rotations == 0 {
		t.Fatalf("no rotations with 256-byte segments: %+v", st.WAL)
	}
	if st.WAL.Compacted == 0 {
		t.Fatalf("no compaction despite events aged past the window cap: %+v", st.WAL)
	}
	segs, err := filepath.Glob(filepath.Join(o.wal, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > int(st.WAL.Rotations) {
		t.Errorf("on-disk WAL unbounded: %d segments after %d rotations and %d compactions",
			len(segs), st.WAL.Rotations, st.WAL.Compacted)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
}

func TestValidateWALFlags(t *testing.T) {
	good := walOpts(t.TempDir())
	if err := good.validate(); err != nil {
		t.Fatalf("valid WAL options rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*options)
	}{
		{"wal without live source", func(o *options) { o.ingest, o.follow, o.in = "", "", "t.csv" }},
		{"bad fsync policy", func(o *options) { o.walFsync = "fsync" }},
		{"negative segment size", func(o *options) { o.walSeg = -1 }},
	}
	for _, tc := range cases {
		o := walOpts(t.TempDir())
		tc.mutate(&o)
		if err := o.validate(); err == nil {
			t.Errorf("%s: validate accepted", tc.name)
		}
	}
}
