// Command darkvecd trains a DarkVec model on a trace and serves it over
// HTTP: nearest-neighbour pivots, on-demand classification, cluster
// summaries and dataset statistics for SOC tooling.
//
// Usage:
//
//	darkvecd -in trace.csv -feeds feeds/ -listen 127.0.0.1:8080
//
// The daemon is built for unattended operation. The listener is bound
// before training starts, so liveness probes answer immediately while the
// readiness probe flips only once the model is servable. Dirty inputs can
// be tolerated with -maxerr (skip-and-count under an error budget; the
// ingest report is printed). Long training runs checkpoint after every
// epoch with -checkpoint, and -resume continues an interrupted run from
// the last completed epoch with byte-identical results. SIGINT/SIGTERM
// trigger a graceful shutdown: training is cancelled (leaving a resumable
// checkpoint) or in-flight requests are drained before exit. Every request
// runs behind panic recovery, a per-request timeout (-timeout) and an
// in-flight concurrency cap (-maxinflight).
//
// Endpoints:
//
//	GET /healthz/live   — process is up (200 even while training)
//	GET /healthz/ready  — model trained and serving (503 until then)
//	GET /healthz        — legacy readiness alias
//	GET /v1/stats
//	GET /v1/similar?ip=1.2.3.4&k=10
//	GET /v1/classify?ip=1.2.3.4&k=7
//	GET /v1/clusters?min=3
//	GET /v1/sender?ip=1.2.3.4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/darkvec/darkvec/internal/apiserver"
	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/robust"
	"github.com/darkvec/darkvec/internal/trace"
)

// options carries every knob of a daemon run; main fills it from flags,
// tests construct it directly.
type options struct {
	in          string
	feedsDir    string
	listen      string
	dim         int
	window      int
	epochs      int
	kPrime      int
	evalDays    int
	seed        uint64
	maxErr      int64
	checkpoint  string
	resume      bool
	reqTimeout  time.Duration
	maxInFlight int
	drain       time.Duration

	logf     func(format string, args ...any) // nil: stdout
	onListen func(addr string)                // test hook: listener bound
	onReady  func(addr string)                // test hook: model serving
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "input trace (.csv or .pcap)")
	flag.StringVar(&o.feedsDir, "feeds", "", "directory of <class>.txt IP feeds")
	flag.StringVar(&o.listen, "listen", "127.0.0.1:8080", "HTTP listen address")
	flag.IntVar(&o.dim, "dim", 50, "embedding dimension V")
	flag.IntVar(&o.window, "window", 25, "context window c")
	flag.IntVar(&o.epochs, "epochs", 10, "training epochs")
	flag.IntVar(&o.kPrime, "kprime", 3, "clustering graph out-degree")
	flag.IntVar(&o.evalDays, "evaldays", 1, "serve the senders of the final N days")
	flag.Uint64Var(&o.seed, "seed", 1, "training seed")
	flag.Int64Var(&o.maxErr, "maxerr", 0, "tolerate up to N malformed input records (0 = strict)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file written after every training epoch")
	flag.BoolVar(&o.resume, "resume", false, "resume training from -checkpoint if it exists")
	flag.DurationVar(&o.reqTimeout, "timeout", apiserver.DefaultRequestTimeout, "per-request timeout (0 = none)")
	flag.IntVar(&o.maxInFlight, "maxinflight", apiserver.DefaultMaxInFlight, "max concurrent requests before shedding (0 = unlimited)")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful shutdown drain timeout")
	flag.Parse()
	if o.in == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "darkvecd:", err)
		os.Exit(1)
	}
}

// validate rejects nonsensical flags before any expensive work: training
// parameters must be positive and the listen address well-formed, so a
// typo fails in milliseconds rather than after a long training run.
func (o *options) validate() error {
	if o.in == "" {
		return errors.New("missing -in trace")
	}
	if o.dim <= 0 {
		return fmt.Errorf("invalid -dim %d: must be > 0", o.dim)
	}
	if o.window <= 0 {
		return fmt.Errorf("invalid -window %d: must be > 0", o.window)
	}
	if o.epochs <= 0 {
		return fmt.Errorf("invalid -epochs %d: must be > 0", o.epochs)
	}
	if o.kPrime <= 0 {
		return fmt.Errorf("invalid -kprime %d: must be > 0", o.kPrime)
	}
	if o.evalDays <= 0 {
		return fmt.Errorf("invalid -evaldays %d: must be > 0", o.evalDays)
	}
	if o.maxErr < 0 {
		return fmt.Errorf("invalid -maxerr %d: must be >= 0", o.maxErr)
	}
	if o.resume && o.checkpoint == "" {
		return errors.New("-resume requires -checkpoint")
	}
	host, port, err := net.SplitHostPort(o.listen)
	if err != nil {
		return fmt.Errorf("invalid -listen %q: %v", o.listen, err)
	}
	if p, err := strconv.Atoi(port); err != nil || p < 0 || p > 65535 {
		return fmt.Errorf("invalid -listen %q: bad port %q", o.listen, port)
	}
	if host != "" && host != "localhost" && net.ParseIP(host) == nil {
		return fmt.Errorf("invalid -listen %q: host must be an IP or localhost", o.listen)
	}
	return nil
}

func run(ctx context.Context, o options) error {
	if o.logf == nil {
		o.logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := o.validate(); err != nil {
		return err
	}

	tr, rep, err := trace.ReadFile(o.in, o.maxErr)
	if err != nil {
		return err
	}
	o.logf("%s", rep.String())

	feeds := map[string][]netutil.IPv4{}
	if o.feedsDir != "" {
		entries, err := os.ReadDir(o.feedsDir)
		if err != nil {
			return err
		}
		for _, ent := range entries {
			if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".txt") {
				continue
			}
			ff, err := os.Open(filepath.Join(o.feedsDir, ent.Name()))
			if err != nil {
				return err
			}
			ips, err := labels.ReadFeed(ff)
			ff.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", ent.Name(), err)
			}
			feeds[strings.TrimSuffix(ent.Name(), ".txt")] = ips
		}
	}
	gt := labels.Build(tr, feeds)

	// Bind before the long training run: liveness probes and fast 503s for
	// not-yet-ready traffic beat a connection-refused black hole.
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	gate := robust.NewGate()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz/live", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"live"}`)
	})
	mux.HandleFunc("GET /healthz/ready", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !gate.Ready() {
			w.Header().Set("Retry-After", "5")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"training"}`)
			return
		}
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	mux.Handle("/", gate)

	writeTimeout := 30 * time.Second
	if o.reqTimeout > 0 {
		// Leave headroom past the per-request timeout so the 503 body from
		// the timeout middleware still reaches the client.
		writeTimeout = o.reqTimeout + 5*time.Second
	}
	httpSrv := &http.Server{
		Handler:           mux,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      writeTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	o.logf("listening on http://%s (training; readiness pending)", ln.Addr())
	if o.onListen != nil {
		o.onListen(ln.Addr().String())
	}

	cfg := core.DefaultConfig()
	cfg.W2V.Dim = o.dim
	cfg.W2V.Window = o.window
	cfg.W2V.Epochs = o.epochs
	cfg.W2V.Seed = o.seed
	o.logf("training on %d events (%d days)...", tr.Len(), tr.Days())
	emb, err := core.TrainEmbeddingOpts(tr, cfg, core.TrainOpts{
		Context:        ctx,
		CheckpointPath: o.checkpoint,
		Resume:         o.resume,
	})
	if err != nil {
		httpSrv.Close()
		<-serveErr
		if errors.Is(err, context.Canceled) {
			// Interrupted by SIGINT/SIGTERM: a graceful exit. With
			// -checkpoint set, the last completed epoch is on disk and
			// -resume picks it up next start.
			if o.checkpoint != "" {
				o.logf("training interrupted; resumable checkpoint at %s", o.checkpoint)
			} else {
				o.logf("training interrupted")
			}
			return nil
		}
		return err
	}
	space, cov := emb.EvalSpace(tr.LastDays(o.evalDays), nil)
	o.logf("trained in %s; serving %d senders (coverage %.0f%%)",
		emb.TrainTime.Round(time.Millisecond), space.Len(), cov*100)

	gate.Set(apiserver.New(apiserver.Config{
		Space: space, GT: gt, Trace: tr, KPrime: o.kPrime, Seed: o.seed,
		RequestTimeout: o.reqTimeout, MaxInFlight: o.maxInFlight, Logf: o.logf,
	}))
	o.logf("ready")
	if o.onReady != nil {
		o.onReady(ln.Addr().String())
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		o.logf("shutting down (draining up to %s)...", o.drain)
		sctx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		<-serveErr // http.ErrServerClosed
		return nil
	}
}
