// Command darkvecd trains a DarkVec model on a trace and serves it over
// HTTP: nearest-neighbour pivots, on-demand classification, cluster
// summaries and dataset statistics for SOC tooling.
//
// Usage:
//
//	darkvecd -in trace.csv -feeds feeds/ -listen 127.0.0.1:8080
//
// The daemon is built for unattended operation. The listener is bound
// before training starts, so liveness probes answer immediately while the
// readiness probe flips only once the model is servable. Dirty inputs can
// be tolerated with -maxerr (skip-and-count under an error budget; the
// ingest report is printed). Long training runs checkpoint after every
// epoch with -checkpoint, and -resume continues an interrupted run from
// the last completed epoch with byte-identical results. SIGINT/SIGTERM
// trigger a graceful shutdown: training is cancelled (leaving a resumable
// checkpoint) or in-flight requests are drained before exit. Every request
// runs behind panic recovery, a per-request timeout (-timeout) and an
// in-flight concurrency cap (-maxinflight).
//
// With -store, trained models are published into a versioned, checksummed
// model store: on boot the daemon serves the newest intact generation
// without retraining (corrupt artifacts are quarantined and the next older
// one is used), so a kill -9 at any instant costs only the training that
// was in flight. With -retrain, a background supervisor retrains
// periodically off the serving path and rolls the new model in atomically
// — zero dropped requests. A retrain that fails (or publishes a corrupt
// artifact, detected by load-back verification) keeps the last-good model
// serving in degraded mode: responses carry X-DarkVec-Model-Stale: true,
// /healthz/ready reports the failure, retries back off exponentially, and
// after -retrainfail consecutive failures a circuit breaker stops the
// churn. Every response from a store-managed daemon carries
// X-DarkVec-Model-Version.
//
// Endpoints:
//
//	GET /healthz/live   — process is up (200 even while training)
//	GET /healthz/ready  — model trained and serving (503 until then;
//	                      "degraded" + last_error when retraining fails)
//	GET /healthz        — legacy readiness alias
//	GET /v1/stats
//	GET /v1/similar?ip=1.2.3.4&k=10
//	GET /v1/classify?ip=1.2.3.4&k=7
//	GET /v1/clusters?min=3
//	GET /v1/sender?ip=1.2.3.4
//	GET /v1/model      — serving generation, space size, exact-vs-IVF mode
//
// At scale, similarity and classification queries can ride an IVF
// cell-probe index instead of the exact scan: -ann auto (default) builds it
// when the space reaches -annmin senders, -ann on forces it, -ann off pins
// exact search. The index is rebuilt for every generation inside the
// retrain cycle before the atomic swap; -annprobe 0 auto-calibrates the
// probed cell count to a 0.95 sampled recall. A failed index build serves
// the generation exactly instead (degradation visible on /v1/model and
// /healthz/ready), never refusing traffic.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	rpprof "runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/darkvec/darkvec/internal/apiserver"
	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/corpus"
	"github.com/darkvec/darkvec/internal/drift"
	"github.com/darkvec/darkvec/internal/embed"
	"github.com/darkvec/darkvec/internal/federation"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/modelstore"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/robust"
	"github.com/darkvec/darkvec/internal/stream"
	"github.com/darkvec/darkvec/internal/trace"
	"github.com/darkvec/darkvec/internal/w2v"
	"github.com/darkvec/darkvec/internal/wal"
)

// options carries every knob of a daemon run; main fills it from flags,
// tests construct it directly.
type options struct {
	in          string
	feedsDir    string
	listen      string
	dim         int
	window      int
	epochs      int
	kPrime      int
	evalDays    int
	seed        uint64
	maxErr      int64
	checkpoint  string
	resume      bool
	pprofAddr   string // loopback-only pprof listener ("" = off)
	reqTimeout  time.Duration
	maxInFlight int
	drain       time.Duration
	store       string        // model store directory ("" = unmanaged)
	retrain     time.Duration // background retrain interval (0 = never)
	warm        bool          // warm-start retrains from the previous generation
	keep        int           // store generations kept after publish
	retrainFail int           // breaker threshold for consecutive retrain failures
	vantage     string        // vantage point name ("" = single-vantage)

	// Approximate k-NN serving (the IVF cell-probe index, internal/embed).
	// The index is rebuilt for every generation inside the retrain cycle,
	// before the atomic gate swap; a failed build degrades to exact search,
	// it never blocks serving.
	ann      string // auto | on | off: when the index is built
	annMin   int    // auto mode builds the index only at >= this many senders
	annCells int    // coarse cells (0 = sqrt of the space size)
	annProbe int    // cells probed per query (0 = calibrate to 0.95 recall)
	annQuant bool   // scan members through the int8-quantized sidecar

	// Live ingestion (see ingest.go). Either source makes the daemon
	// retrain on the rolling window instead of re-reading -in.
	ingest        string        // live-feed listener: host:port or unix:/path ("" = off)
	follow        string        // tail-follow this file as a live source ("" = off)
	flush         string        // window drain/seed file for restarts ("" = off)
	ingestRate    float64       // per-source admission rate, events/sec (0 = unlimited)
	ingestIdle    time.Duration // per-connection read deadline
	ingestStall   time.Duration // silence before the feed counts as stalled
	ingestCap     int           // window hard cap, events
	ingestAge     time.Duration // window event-time horizon
	ingestQueue   int           // bounded hand-off queue capacity
	ingestPolicy  string        // shed-newest | drop-oldest
	ingestMin     int           // window events required before a retrain cycle runs
	ingestMinPkts int           // senders need >= P buffered packets to enter a retrain

	// Durable ingestion (see ingest.go): every event the queue accepts is
	// appended to a crash-consistent write-ahead log before it enters the
	// window, and boot replays the log to rebuild the window.
	wal      string // WAL directory ("" = window is memory-only between flushes)
	walFsync string // fsync policy: always | interval | off
	walSeg   int64  // segment rotation size, bytes (0 = default 64 MiB)

	// Drift quality gate (see drift.go). Any non-zero budget arms the
	// gate: a retrained candidate violating a budget is rejected before
	// publish and the previous generation keeps serving.
	driftMax     float64 // composite drift score budget (0 = no check)
	driftChurn   float64 // vocabulary churn budget
	driftOverlap float64 // minimum k-NN neighbourhood overlap
	driftSilDrop float64 // silhouette regression budget
	driftShift   float64 // per-class centroid shift budget
	driftNew     float64 // majority-new cluster fraction budget
	driftK       int     // neighbourhood size for the overlap metric
	driftHist    int     // gate decisions retained (and persisted with -store)

	logf           func(format string, args ...any)                         // nil: stdout
	onListen       func(addr string)                                        // test hook: listener bound
	onReady        func(addr string)                                        // test hook: model serving
	onIngestListen func(addr string)                                        // test hook: ingest listener bound
	onPprofListen  func(addr string)                                        // test hook: pprof listener bound
	onRetrain      func(error)                                              // test hook: outcome of each retrain cycle
	retrainBackoff robust.Backoff                                           // test hook: deterministic backoff
	retrainSleep   func(context.Context, time.Duration) error               // test hook: no wall-clock sleeps
	trainWrap      func(io.Writer) io.Writer                                // test hook: fault injection on publish
	warmSeedHook   func(*w2v.WarmSeed)                                      // test hook: mutate (corrupt) the warm seed before training
	walWrap        func(wal.SyncWriter) wal.SyncWriter                      // test hook: fault injection on WAL segments
	annBuild       func(*embed.Space, embed.IVFOptions) (*embed.IVF, error) // test hook: fault injection on index builds
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "input trace (.csv or .pcap)")
	flag.StringVar(&o.feedsDir, "feeds", "", "directory of <class>.txt IP feeds")
	flag.StringVar(&o.listen, "listen", "127.0.0.1:8080", "HTTP listen address")
	flag.IntVar(&o.dim, "dim", 50, "embedding dimension V")
	flag.IntVar(&o.window, "window", 25, "context window c")
	flag.IntVar(&o.epochs, "epochs", 10, "training epochs")
	flag.IntVar(&o.kPrime, "kprime", 3, "clustering graph out-degree")
	flag.IntVar(&o.evalDays, "evaldays", 1, "serve the senders of the final N days")
	flag.Uint64Var(&o.seed, "seed", 1, "training seed")
	flag.Int64Var(&o.maxErr, "maxerr", 0, "tolerate up to N malformed input records (0 = strict)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file written after every training epoch")
	flag.BoolVar(&o.resume, "resume", false, "resume training from -checkpoint if it exists")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; empty = off)")
	flag.DurationVar(&o.reqTimeout, "timeout", apiserver.DefaultRequestTimeout, "per-request timeout (0 = none)")
	flag.IntVar(&o.maxInFlight, "maxinflight", apiserver.DefaultMaxInFlight, "max concurrent requests before shedding (0 = unlimited)")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful shutdown drain timeout")
	flag.StringVar(&o.store, "store", "", "model store directory (versioned, checksummed artifacts)")
	flag.DurationVar(&o.retrain, "retrain", 0, "background retrain interval (0 = never; requires -store)")
	flag.BoolVar(&o.warm, "warm", false, "warm-start retrains: seed from the previous generation's vectors and train only the window delta (falls back to cold on any mismatch)")
	flag.IntVar(&o.keep, "keep", 3, "model store generations kept after each publish")
	flag.IntVar(&o.retrainFail, "retrainfail", 5, "consecutive retrain failures before the circuit breaker gives up")
	flag.StringVar(&o.vantage, "vantage", "", "vantage point name: tags untagged live events and the /v1/intern export")
	flag.StringVar(&o.ann, "ann", "auto", "approximate k-NN index: auto (build at >= -annmin senders), on, or off")
	flag.IntVar(&o.annMin, "annmin", 16384, "auto ANN threshold: build the index when the space holds at least this many senders")
	flag.IntVar(&o.annCells, "anncells", 0, "ANN coarse cells (0 = sqrt of the space size)")
	flag.IntVar(&o.annProbe, "annprobe", 0, "ANN cells probed per query (0 = calibrate to 0.95 sampled recall)")
	flag.BoolVar(&o.annQuant, "annquant", false, "ANN scans through the int8-quantized vector sidecar (4x less memory traffic)")
	flag.StringVar(&o.ingest, "ingest", "", "live-feed listener (host:port or unix:/path) speaking the CSV line protocol")
	flag.StringVar(&o.follow, "follow", "", "tail-follow this file as a live event source")
	flag.StringVar(&o.flush, "flush", "", "drain the live window to this CSV on shutdown and re-seed from it on boot")
	flag.Float64Var(&o.ingestRate, "ingestrate", 0, "per-source ingest rate limit, events/sec (0 = unlimited)")
	flag.DurationVar(&o.ingestIdle, "ingestidle", stream.DefaultIdleTimeout, "cut a live connection after this long without a line")
	flag.DurationVar(&o.ingestStall, "ingeststall", stream.DefaultStallAfter, "report degraded after this long without any live event")
	flag.IntVar(&o.ingestCap, "ingestcap", 1<<20, "live window hard cap, events")
	flag.DurationVar(&o.ingestAge, "ingestage", 24*time.Hour, "live window event-time horizon")
	flag.IntVar(&o.ingestQueue, "ingestqueue", stream.DefaultQueueSize, "live ingest queue capacity")
	flag.StringVar(&o.ingestPolicy, "ingestpolicy", "shed-newest", "full-queue drop policy: shed-newest or drop-oldest")
	flag.IntVar(&o.ingestMin, "ingestmin", 100, "window events required before a retrain cycle runs")
	flag.IntVar(&o.ingestMinPkts, "ingestminpkts", 1, "senders need >= P buffered packets to enter a retrain (the paper's active-sender filter)")
	flag.StringVar(&o.wal, "wal", "", "write-ahead log directory: accepted live events are durable before entering the window, and boot replays them")
	flag.StringVar(&o.walFsync, "walfsync", "always", "WAL fsync policy: always (zero loss), interval (bounded loss) or off (OS-decided)")
	flag.Int64Var(&o.walSeg, "walseg", 0, "WAL segment rotation size in bytes (0 = 64 MiB)")
	flag.Float64Var(&o.driftMax, "driftmax", 0, "reject a retrain whose composite drift score exceeds this (0 = off)")
	flag.Float64Var(&o.driftChurn, "driftchurn", 0, "reject a retrain whose vocabulary churn exceeds this (0 = off)")
	flag.Float64Var(&o.driftOverlap, "driftoverlap", 0, "reject a retrain whose k-NN neighbourhood overlap falls below this (0 = off)")
	flag.Float64Var(&o.driftSilDrop, "driftsildrop", 0, "reject a retrain whose mean silhouette drops by more than this (0 = off)")
	flag.Float64Var(&o.driftShift, "driftshift", 0, "reject a retrain with a per-class centroid shift above this (0 = off)")
	flag.Float64Var(&o.driftNew, "driftnew", 0, "reject a retrain where a larger fraction of senders lives in majority-new clusters (0 = off)")
	flag.IntVar(&o.driftK, "driftk", 10, "neighbourhood size for the drift overlap metric")
	flag.IntVar(&o.driftHist, "drifthist", drift.DefaultHistorySize, "drift gate decisions retained (persisted with -store)")
	flag.Parse()
	if o.in == "" && !o.live() {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "darkvecd:", err)
		os.Exit(1)
	}
}

// validate rejects nonsensical flags before any expensive work: training
// parameters must be positive and the listen address well-formed, so a
// typo fails in milliseconds rather than after a long training run.
func (o *options) validate() error {
	if o.in == "" && !o.live() {
		return errors.New("missing -in trace (or a live source: -ingest / -follow)")
	}
	if o.dim <= 0 {
		return fmt.Errorf("invalid -dim %d: must be > 0", o.dim)
	}
	if o.window <= 0 {
		return fmt.Errorf("invalid -window %d: must be > 0", o.window)
	}
	if o.epochs <= 0 {
		return fmt.Errorf("invalid -epochs %d: must be > 0", o.epochs)
	}
	if o.kPrime <= 0 {
		return fmt.Errorf("invalid -kprime %d: must be > 0", o.kPrime)
	}
	if o.evalDays <= 0 {
		return fmt.Errorf("invalid -evaldays %d: must be > 0", o.evalDays)
	}
	if o.maxErr < 0 {
		return fmt.Errorf("invalid -maxerr %d: must be >= 0", o.maxErr)
	}
	if o.resume && o.checkpoint == "" {
		return errors.New("-resume requires -checkpoint")
	}
	if o.pprofAddr != "" {
		host, _, err := net.SplitHostPort(o.pprofAddr)
		if err != nil {
			return fmt.Errorf("invalid -pprof %q: %v", o.pprofAddr, err)
		}
		// Profiles leak memory contents; never expose them off-host.
		ip := net.ParseIP(host)
		if host != "localhost" && (ip == nil || !ip.IsLoopback()) {
			return fmt.Errorf("invalid -pprof %q: host must be a loopback address", o.pprofAddr)
		}
	}
	if o.retrain < 0 {
		return fmt.Errorf("invalid -retrain %s: must be >= 0", o.retrain)
	}
	// A live daemon may retrain without a store (in-memory swaps only);
	// a static one re-reads the same file, so retraining is pointless
	// unless the result is also persisted.
	if o.retrain > 0 && o.store == "" && !o.live() {
		return errors.New("-retrain requires -store")
	}
	if o.warm && o.retrain <= 0 {
		return errors.New("-warm requires -retrain > 0: warm seeding applies to background retrains")
	}
	if o.live() {
		if o.retrain <= 0 {
			return errors.New("live ingestion (-ingest / -follow) requires -retrain > 0: the window is useless if nothing retrains on it")
		}
		if _, err := parsePolicy(o.ingestPolicy); err != nil {
			return err
		}
		// Zeroes mean "use the default" so options constructed in code
		// without flag parsing behave like the CLI; only negatives are
		// nonsense (except -ingestage, where negative = unbounded).
		if o.ingestCap < 0 {
			return fmt.Errorf("invalid -ingestcap %d: must be >= 0", o.ingestCap)
		}
		if o.ingestQueue < 0 {
			return fmt.Errorf("invalid -ingestqueue %d: must be >= 0", o.ingestQueue)
		}
		if o.ingestMin < 0 {
			return fmt.Errorf("invalid -ingestmin %d: must be >= 0", o.ingestMin)
		}
		if o.ingestMinPkts < 0 {
			return fmt.Errorf("invalid -ingestminpkts %d: must be >= 0", o.ingestMinPkts)
		}
		if o.ingestRate < 0 {
			return fmt.Errorf("invalid -ingestrate %v: must be >= 0", o.ingestRate)
		}
	}
	if o.wal != "" && !o.live() {
		return errors.New("-wal logs accepted live events; it requires a live source (-ingest / -follow)")
	}
	if o.wal != "" {
		if _, err := wal.ParseSyncPolicy(o.walFsync); err != nil {
			return fmt.Errorf("invalid -walfsync: %w", err)
		}
	}
	if o.walSeg < 0 {
		return fmt.Errorf("invalid -walseg %d: must be >= 0", o.walSeg)
	}
	for _, b := range []struct {
		name string
		v    float64
	}{
		{"-driftmax", o.driftMax}, {"-driftchurn", o.driftChurn},
		{"-driftoverlap", o.driftOverlap}, {"-driftsildrop", o.driftSilDrop},
		{"-driftshift", o.driftShift}, {"-driftnew", o.driftNew},
	} {
		// Every drift metric lives in [0,1]; a budget outside that range is
		// a typo that would silently never (or always) trip.
		if b.v < 0 || b.v > 1 {
			return fmt.Errorf("invalid %s %v: must be in [0,1]", b.name, b.v)
		}
	}
	if o.driftK < 0 {
		return fmt.Errorf("invalid -driftk %d: must be >= 0", o.driftK)
	}
	if o.driftHist < 0 {
		return fmt.Errorf("invalid -drifthist %d: must be >= 0", o.driftHist)
	}
	if o.budgets().Enabled() && o.retrain <= 0 {
		return errors.New("drift budgets require -retrain > 0: the gate judges retrained candidates")
	}
	if o.keep < 0 {
		return fmt.Errorf("invalid -keep %d: must be >= 0", o.keep)
	}
	if o.retrainFail < 0 {
		return fmt.Errorf("invalid -retrainfail %d: must be >= 0", o.retrainFail)
	}
	switch o.ann {
	case "", "auto", "on", "off":
	default:
		return fmt.Errorf("invalid -ann %q: must be auto, on or off", o.ann)
	}
	if o.annMin < 0 {
		return fmt.Errorf("invalid -annmin %d: must be >= 0", o.annMin)
	}
	if o.annCells < 0 {
		return fmt.Errorf("invalid -anncells %d: must be >= 0", o.annCells)
	}
	if o.annProbe < 0 {
		return fmt.Errorf("invalid -annprobe %d: must be >= 0", o.annProbe)
	}
	// The vantage name travels inside CSV lines and "; "-joined headers;
	// separators in it would corrupt both framings.
	if strings.ContainsAny(o.vantage, ",;\r\n") {
		return fmt.Errorf("invalid -vantage %q: must not contain ',', ';' or line breaks", o.vantage)
	}
	host, port, err := net.SplitHostPort(o.listen)
	if err != nil {
		return fmt.Errorf("invalid -listen %q: %v", o.listen, err)
	}
	if p, err := strconv.Atoi(port); err != nil || p < 0 || p > 65535 {
		return fmt.Errorf("invalid -listen %q: bad port %q", o.listen, port)
	}
	if host != "" && host != "localhost" && net.ParseIP(host) == nil {
		return fmt.Errorf("invalid -listen %q: host must be an IP or localhost", o.listen)
	}
	return nil
}

func run(ctx context.Context, o options) error {
	if o.logf == nil {
		o.logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := o.validate(); err != nil {
		return err
	}

	if o.pprofAddr != "" {
		// A dedicated loopback-only mux: the profiling surface must never
		// share a listener with the public API.
		pln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return err
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux, ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = psrv.Serve(pln) }()
		defer psrv.Close()
		o.logf("pprof on http://%s/debug/pprof/", pln.Addr())
		if o.onPprofListen != nil {
			o.onPprofListen(pln.Addr().String())
		}
	}

	feeds := map[string][]netutil.IPv4{}
	if o.feedsDir != "" {
		entries, err := os.ReadDir(o.feedsDir)
		if err != nil {
			return err
		}
		for _, ent := range entries {
			if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".txt") {
				continue
			}
			ff, err := os.Open(filepath.Join(o.feedsDir, ent.Name()))
			if err != nil {
				return err
			}
			ips, err := labels.ReadFeed(ff)
			ff.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", ent.Name(), err)
			}
			feeds[strings.TrimSuffix(ent.Name(), ".txt")] = ips
		}
	}

	cfg := core.DefaultConfig()
	cfg.W2V.Dim = o.dim
	cfg.W2V.Window = o.window
	cfg.W2V.Epochs = o.epochs
	cfg.W2V.Seed = o.seed

	d := &daemon{o: o, cfg: cfg, feeds: feeds, gate: robust.NewGate(), epoch: federation.NewEpoch()}
	d.status.lastErr.Store("")
	d.status.annErr.Store("")
	var err error
	if o.store != "" {
		d.st, err = modelstore.Open(o.store, modelstore.Options{Keep: o.keep, Logf: o.logf})
		if err != nil {
			return err
		}
	}
	d.initDrift()

	// The boot corpus: live mode seeds the rolling window (previous flush
	// + optional -in base trace) and snapshots it; static mode reads -in.
	var tr *trace.Trace
	if o.live() {
		if err := d.startIngest(); err != nil {
			return err
		}
		// LIFO: the ingestor closes (draining the queue through the WAL)
		// before the WAL itself is flushed and closed.
		defer d.closeWAL()
		defer d.ing.Close() // idempotent; the drain path closes earlier, explicitly
		tr = d.ing.Window().Snapshot()
	} else {
		var rep *robust.IngestReport
		tr, rep, err = trace.ReadFile(o.in, o.maxErr)
		if err != nil {
			return err
		}
		o.logf("%s", rep.String())
	}
	gt := labels.Build(tr, feeds)

	// Bind before the long training run: liveness probes and fast 503s for
	// not-yet-ready traffic beat a connection-refused black hole.
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz/live", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"live"}`)
	})
	mux.HandleFunc("GET /healthz/ready", d.handleReady)
	if d.ing != nil {
		// Ungated: ingest accounting must answer while the first model is
		// still training.
		mux.HandleFunc("GET /v1/ingest", d.handleIngest)
	}
	// Ungated for the same reason: the drift trajectory and gate decisions
	// must be inspectable while a candidate is still training.
	mux.HandleFunc("GET /v1/drift", d.handleDrift)
	// Ungated too: the federation aggregator mirrors the sender id space
	// while the first model is still training, and pages stay stable under
	// concurrent retrains because the table is append-only.
	mux.Handle("GET /v1/intern", federation.NewInternHandler(federation.InternSource{
		Vantage: o.vantage,
		Epoch:   d.epoch,
		Table:   d.trainInterner().Table(),
		Generation: func() string {
			if v := d.status.version.Load(); v != 0 {
				return modelstore.Version(v).String()
			}
			return ""
		},
	}))
	// The staleness marker wraps the gate so a degraded daemon — a failed
	// retrain still serving the previous generation, or a live feed gone
	// silent — is visible on every response, not just the health endpoint.
	mux.Handle("/", apiserver.StaleHeader(d.gate, d.stale))

	writeTimeout := 30 * time.Second
	if o.reqTimeout > 0 {
		// Leave headroom past the per-request timeout so the 503 body from
		// the timeout middleware still reaches the client.
		writeTimeout = o.reqTimeout + 5*time.Second
	}
	httpSrv := &http.Server{
		Handler:           mux,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      writeTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	o.logf("listening on http://%s (training; readiness pending)", ln.Addr())
	if o.onListen != nil {
		o.onListen(ln.Addr().String())
	}

	// The readiness announcement fires exactly once, on the first model
	// swap — immediately below for a boot-time model, or from the retrain
	// loop when a live daemon starts on an empty window.
	d.readyFn = func() {
		o.logf("ready")
		if o.onReady != nil {
			o.onReady(ln.Addr().String())
		}
	}

	// Prefer booting from the store: after a crash (even kill -9 mid-
	// publish) the newest intact generation serves immediately, and only a
	// genuinely empty store pays for training on the boot path.
	emb, version, booted := d.bootFromStore(tr)
	if !booted {
		if o.live() && tr.Len() < o.ingestMin {
			// Nothing to train on yet. Serve 503s until the live window
			// reaches -ingestmin and the retrain loop trains the first
			// model; the ingest endpoints answer meanwhile.
			o.logf("live window holds %d events (training needs %d); first model deferred to the retrain loop", tr.Len(), o.ingestMin)
		} else {
			o.logf("training on %d events (%d days)...", tr.Len(), tr.Days())
			emb, err = core.TrainEmbeddingOpts(tr, cfg, core.TrainOpts{
				Context:        ctx,
				CheckpointPath: o.checkpoint,
				Resume:         o.resume,
				Interner:       d.trainInterner(),
			})
			if err != nil {
				httpSrv.Close()
				<-serveErr
				if errors.Is(err, context.Canceled) {
					// Interrupted by SIGINT/SIGTERM: a graceful exit. With
					// -checkpoint set, the last completed epoch is on disk and
					// -resume picks it up next start.
					if o.checkpoint != "" {
						o.logf("training interrupted; resumable checkpoint at %s", o.checkpoint)
					} else {
						o.logf("training interrupted")
					}
					return nil
				}
				return err
			}
			o.logf("trained in %s", emb.TrainTime.Round(time.Millisecond))
			d.setRetrainInfo("cold", emb.TrainTime, emb.Epochs, "")
			if d.st != nil {
				if version, err = d.publishVerified(emb); err != nil {
					// The in-memory model is fine; only its persistence failed.
					// Serve it (unversioned) and let the next retrain try again.
					o.logf("initial publish failed (serving in-memory model): %v", err)
					d.status.lastErr.Store(err.Error())
					version = 0
				}
			}
		}
	}
	if emb != nil {
		d.serve(emb, tr, gt, version)
		// The boot-time generation seeds the gate's baseline, so the very
		// first retrain is already judged against it.
		d.driftBootstrap(emb, tr, gt, version)
	}
	var retrainDone chan struct{}
	if o.retrain > 0 && (d.st != nil || o.live()) {
		retrainDone = make(chan struct{})
		go func() {
			defer close(retrainDone)
			d.retrainLoop(ctx)
		}()
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		o.logf("shutting down (draining up to %s)...", o.drain)
		sctx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		<-serveErr // http.ErrServerClosed
		if retrainDone != nil {
			// Join the retrain supervisor: an in-flight cycle aborts on the
			// canceled context, and nothing may touch the store or window
			// after run returns.
			<-retrainDone
		}
		if d.ing != nil {
			// Stop the feed after the HTTP drain (so /v1/ingest answered
			// to the last), apply everything still queued to the window,
			// then flush the window for the next boot's seed.
			d.ing.Close()
			if err := d.flushWindow(); err != nil {
				return fmt.Errorf("window flush: %w", err)
			}
			d.closeWAL()
		}
		return nil
	}
}

// modelStatus is the serving model's health, shared between the HTTP
// handlers and the retrain supervisor. version is the store generation
// (0 = unmanaged), stale flips when the last retrain cycle failed and the
// daemon is deliberately serving an older model.
type modelStatus struct {
	version     atomic.Uint64
	stale       atomic.Bool
	driftReject atomic.Bool  // stale specifically because the drift gate refused a candidate
	lastErr     atomic.Value // string
	annErr      atomic.Value // string: why this generation serves exact despite ANN being requested
}

// daemon carries the pieces of a running darkvecd that outlive a single
// model generation: the readiness gate handlers swap through, the model
// store, and the serving status.
type daemon struct {
	o      options
	cfg    core.Config
	feeds  map[string][]netutil.IPv4
	gate   *robust.Gate
	st     *modelstore.Store // nil when unmanaged
	ing    *stream.Ingestor  // nil when not ingesting live
	walLog *wal.Log          // nil when ingestion is not WAL-backed
	status modelStatus

	// Boot replay accounting, fixed before the listener binds: how much of
	// the window was rebuilt from the WAL and how many records were framed
	// intact but undecodable (charged to the shared quarantine budget).
	walReplayed    int64
	walQuarantined int64
	drift          driftState
	epoch          string // intern-export process-instance id (see federation.InternPage)

	// gen hands state from one accepted generation to the next: the
	// serving model (warm-seed source for the next retrain, with its Perm
	// when trained in-process) and how the last training cycle ran, which
	// /v1/model reports. Training runs are sequential, but the serving
	// handlers read concurrently, hence the lock.
	gen struct {
		mu      sync.Mutex
		prev    *w2v.Model
		retrain *apiserver.RetrainInfo
	}

	readyOnce sync.Once
	readyFn   func() // announced on the first model swap

	internOnce sync.Once
	intern     *corpus.Interner
}

// prevGen returns the model of the last accepted generation — the warm
// seed source — or nil before the first swap.
func (d *daemon) prevGen() *w2v.Model {
	d.gen.mu.Lock()
	defer d.gen.mu.Unlock()
	return d.gen.prev
}

// setRetrainInfo records how the cycle that produced the next generation
// trained; serve() stamps it onto the API server it swaps in.
func (d *daemon) setRetrainInfo(mode string, dur time.Duration, epochs int, fallback string) {
	d.gen.mu.Lock()
	d.gen.retrain = &apiserver.RetrainInfo{
		Mode:         mode,
		DurationSecs: dur.Seconds(),
		Epochs:       epochs,
		WarmFallback: fallback,
	}
	d.gen.mu.Unlock()
}

// trainInterner returns the sender id space shared by every training run
// of this daemon: the live window's interner when ingesting, otherwise a
// daemon-scoped one. Sharing it keeps token ids stable across retrains so
// recurring senders are interned exactly once per process. Training runs
// are sequential (boot, then the retrain loop guarded by its supervisor),
// which is the sharing discipline corpus.Interner requires.
func (d *daemon) trainInterner() *corpus.Interner {
	if d.ing != nil {
		return d.ing.Window().Interner()
	}
	d.internOnce.Do(func() { d.intern = corpus.NewInterner() })
	return d.intern
}

// handleReady reports serving health: 503 while the first model is still
// training, "ready" once serving, "degraded" when the last retrain failed
// and an older generation is deliberately kept on the air.
func (d *daemon) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !d.gate.Ready() {
		robust.Unavailable(w, 5, "not ready: model still training")
		return
	}
	resp := map[string]any{"status": "ready"}
	if v := d.status.version.Load(); v != 0 {
		resp["model_version"] = modelstore.Version(v).String()
	}
	// Degradation causes overlap (a drift-rejected retrain while the feed
	// is silent, say); every active one is listed so an operator sees the
	// full picture, not just whichever cause was checked first.
	var reasons []string
	if d.status.stale.Load() {
		if d.status.driftReject.Load() {
			reasons = append(reasons, "drift_rejected")
		}
		reasons = append(reasons, "stale_model")
		if e, _ := d.status.lastErr.Load().(string); e != "" {
			resp["last_error"] = e
		}
	}
	if e, _ := d.status.annErr.Load().(string); e != "" {
		// The approximate index could not be built for the serving
		// generation: queries still answer (exactly, slower at scale) — a
		// degradation worth alerting on, not an outage.
		reasons = append(reasons, "ann_degraded")
		resp["ann_error"] = e
	}
	if d.ing != nil {
		st := d.ing.Stats()
		resp["ingest"] = st
		if st.Stalled {
			// The model still answers, but it is aging against a silent
			// feed — degraded, with the silence spelled out.
			reasons = append(reasons, "ingest_stalled")
			resp["ingest_stalled"] = true
		}
		if d.walLog != nil && st.LogFailed > 0 {
			// Events reached the window without confirmed durability (a
			// failed append or fsync): serving continues, but a crash now
			// would lose them — degraded, not dead.
			reasons = append(reasons, "wal_degraded")
			resp["wal_failed"] = st.LogFailed
		}
	}
	// Sorted by cause name, so the list is deterministic however the causes
	// accumulated — aggregators and alert rules can match on position.
	sort.Strings(reasons)
	if len(reasons) > 0 {
		resp["status"] = "degraded"
		resp["stale"] = true
		resp["degraded_reasons"] = reasons
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// bootFromStore serves the newest intact generation without retraining —
// the crash-recovery path. Artifacts whose outer frame is intact but whose
// payload fails model parsing are quarantined and the next older
// generation is tried; an empty store falls back to training.
func (d *daemon) bootFromStore(tr *trace.Trace) (*core.Embedding, modelstore.Version, bool) {
	if d.st == nil {
		return nil, 0, false
	}
	for {
		rc, v, err := d.st.OpenLatest()
		if err != nil {
			if !errors.Is(err, modelstore.ErrEmpty) {
				d.o.logf("store: %v", err)
			}
			return nil, 0, false
		}
		m, lerr := w2v.Load(rc)
		rc.Close()
		if lerr != nil {
			d.o.logf("store: %s is framed correctly but does not parse: %v", v, lerr)
			d.st.Quarantine(v, lerr)
			continue
		}
		d.o.logf("booted from store generation %s; skipping initial training", v)
		d.seedInterner(m.Words())
		return core.EmbeddingFromModel(m, tr, d.cfg), v, true
	}
}

// seedInterner interns the IP-shaped vocabulary of a store-booted model so
// the exported id space covers the generation actually serving, not just
// senders seen since boot. Synthetic tokens (the pad word, service markers)
// are skipped — the export is a sender table. Ids differ from the previous
// process's anyway; the fresh epoch forces mirrors to re-sync regardless.
func (d *daemon) seedInterner(words []string) {
	in := d.trainInterner()
	for _, w := range words {
		if ip, err := netutil.ParseIPv4(w); err == nil {
			in.Intern(ip)
		}
	}
}

// publishVerified publishes the model and immediately loads it back from
// the store, so a corruption anywhere on the write path — caught by the
// store's outer checksum or the model's inner one — quarantines the
// artifact and fails the cycle before anything is swapped into serving.
func (d *daemon) publishVerified(emb *core.Embedding) (modelstore.Version, error) {
	v, err := d.st.Publish(func(w io.Writer) error {
		if d.o.trainWrap != nil {
			w = d.o.trainWrap(w)
		}
		return emb.Model.Save(w)
	})
	if err != nil {
		return 0, err
	}
	rc, err := d.st.Open(v)
	if err != nil {
		return 0, fmt.Errorf("published %s failed verification: %w", v, err)
	}
	_, lerr := w2v.Load(rc)
	rc.Close()
	if lerr != nil {
		d.st.Quarantine(v, lerr)
		return 0, fmt.Errorf("published %s failed verification: %w", v, lerr)
	}
	d.o.logf("published model generation %s", v)
	return v, nil
}

// annWanted reports whether the approximate index should be built for a
// space of n senders under the -ann mode.
func (o *options) annWanted(n int) bool {
	switch o.ann {
	case "on":
		return true
	case "off":
		return false
	default: // auto ("" when constructed in code)
		return n >= o.annMin && o.annMin > 0
	}
}

// buildANN builds the IVF index for a freshly evaluated space, before the
// space reaches the gate (indexes are built-before-shared, like the row
// matrix). A failed build is a degradation, never an outage: the space
// serves exact, the failure lands on /v1/model and /healthz/ready, and the
// next retrain cycle tries again on its new space. Returns the degradation
// detail ("" on success or when no index was requested).
func (d *daemon) buildANN(space *embed.Space) string {
	if !d.o.annWanted(space.Len()) {
		return ""
	}
	opts := embed.IVFOptions{
		Cells:     d.o.annCells,
		NProbe:    d.o.annProbe,
		Seed:      d.o.seed,
		Quantized: d.o.annQuant,
	}
	build := space.BuildIVF
	if d.o.annBuild != nil {
		build = func(o embed.IVFOptions) (*embed.IVF, error) { return d.o.annBuild(space, o) }
	}
	ix, err := build(opts)
	if err != nil {
		d.o.logf("ann index build failed (serving exact): %v", err)
		return err.Error()
	}
	st := ix.Stats()
	if st.TargetRecall > 0 {
		d.o.logf("ann index: %d cells, nprobe %d (sampled recall %.3f, target %.2f)",
			st.Cells, st.NProbe, st.CalibratedRecall, st.TargetRecall)
	} else {
		d.o.logf("ann index: %d cells, nprobe %d", st.Cells, st.NProbe)
	}
	return ""
}

// serve swaps a model into the gate. The swap is atomic: in-flight
// requests finish on the generation they started with, new ones land on
// the fresh model, nothing is dropped.
func (d *daemon) serve(emb *core.Embedding, tr *trace.Trace, gt *labels.Set, v modelstore.Version) {
	space, cov := emb.EvalSpace(tr.LastDays(d.o.evalDays), nil)
	ver := ""
	if v != 0 {
		ver = v.String()
	}
	var annErr string
	rpprof.Do(context.Background(), rpprof.Labels("darkvec_phase", "index-build"), func(context.Context) {
		annErr = d.buildANN(space)
	})
	d.gen.mu.Lock()
	d.gen.prev = emb.Model
	retrain := d.gen.retrain
	d.gen.mu.Unlock()
	d.gate.Set(apiserver.New(apiserver.Config{
		Space: space, GT: gt, Trace: tr, KPrime: d.o.kPrime, Seed: d.o.seed,
		RequestTimeout: d.o.reqTimeout, MaxInFlight: d.o.maxInFlight,
		Logf: d.o.logf, ModelVersion: ver, ANNError: annErr, Retrain: retrain,
	}))
	d.status.annErr.Store(annErr)
	d.status.version.Store(uint64(v))
	d.status.stale.Store(false)
	d.status.driftReject.Store(false)
	d.status.lastErr.Store("")
	d.o.logf("serving %d senders (coverage %.0f%%)", space.Len(), cov*100)
	d.readyOnce.Do(func() {
		if d.readyFn != nil {
			d.readyFn()
		}
	})
}

// retrainOnce is one full retrain cycle, run off the serving path: source
// a trace, train, publish with load-back verification, swap. A live
// daemon snapshots the rolling window (through the active-sender filter);
// a static one re-reads -in. Any failure marks the daemon degraded — the
// previous generation keeps serving — and surfaces through /healthz/ready
// and the staleness header.
func (d *daemon) retrainOnce(ctx context.Context) error {
	fail := func(err error) error {
		d.status.stale.Store(true)
		d.status.lastErr.Store(err.Error())
		return err
	}
	var tr *trace.Trace
	if d.ing != nil {
		tr = d.ing.Window().SnapshotActive(d.o.ingestMinPkts)
		if tr.Len() < d.o.ingestMin {
			// A thin window is a fact about the darknet, not a failure:
			// skip the cycle without burning the breaker or flagging
			// degraded, and try again next tick.
			d.o.logf("retrain: window holds %d trainable events (< -ingestmin %d); skipping cycle", tr.Len(), d.o.ingestMin)
			return nil
		}
	} else {
		var err error
		tr, _, err = trace.ReadFile(d.o.in, d.o.maxErr)
		if err != nil {
			return fail(fmt.Errorf("retrain ingest: %w", err))
		}
	}
	gt := labels.Build(tr, d.feeds)

	// Warm start: seed from the serving generation when -warm asked for
	// it. A seed the trainer rejects (id-space mismatch, dimension change,
	// corrupt matrices — anything tagged w2v.ErrWarmSeed) forfeits only
	// the speedup: the cycle retries cold and the fallback reason rides
	// the decision log and /v1/model.
	topts := core.TrainOpts{Context: ctx, Interner: d.trainInterner()}
	mode := "cold"
	warmFallback := ""
	if d.o.warm {
		if prev := d.prevGen(); prev != nil {
			ws := &w2v.WarmSeed{Prev: prev, PrevPerm: prev.Perm}
			if d.o.warmSeedHook != nil {
				d.o.warmSeedHook(ws)
			}
			topts.Warm = ws
			mode = "warm"
		} else {
			warmFallback = "no previous generation in memory"
		}
	}
	trainStart := time.Now()
	emb, err := core.TrainEmbeddingOpts(tr, d.cfg, topts)
	if err != nil && topts.Warm != nil && errors.Is(err, w2v.ErrWarmSeed) {
		d.o.logf("retrain: warm seed unusable, falling back to cold: %v", err)
		warmFallback = err.Error()
		mode = "cold"
		topts.Warm = nil
		emb, err = core.TrainEmbeddingOpts(tr, d.cfg, topts)
	}
	if err != nil {
		return fail(fmt.Errorf("retrain: %w", err))
	}
	trainDur := time.Since(trainStart)
	if ws := emb.Model.Warm; ws != nil {
		d.o.logf("retrain: warm start seeded %d rows (%d fresh, %d retired), delta %.1f%% -> %d/%d epochs in %s",
			ws.Seeded, ws.Fresh, ws.Retired, ws.DeltaFrac*100, ws.Epochs, d.o.epochs, trainDur.Round(time.Millisecond))
	}

	// The quality gate runs before publish: a drifted candidate is never
	// persisted, never swapped in, and fails the cycle exactly like a
	// corrupt artifact — same degraded markers, same backoff, same breaker.
	var snap *drift.Snapshot
	var rep *drift.Report
	if d.driftEnabled() {
		var reasons []string
		rpprof.Do(ctx, rpprof.Labels("darkvec_phase", "drift-check"), func(context.Context) {
			snap, err = d.captureGeneration(emb, tr, gt, d.nextCandidateName())
			if err != nil {
				err = fmt.Errorf("drift capture: %w", err)
				return
			}
			rep, reasons, err = d.gateCheck(snap)
			if err != nil {
				err = fmt.Errorf("drift compare: %w", err)
			}
		})
		if err != nil {
			return fail(err)
		}
		if len(reasons) > 0 {
			return fail(d.rejectCandidate(snap, rep, reasons))
		}
	}

	var v modelstore.Version
	if d.st != nil {
		rpprof.Do(ctx, rpprof.Labels("darkvec_phase", "publish"), func(context.Context) {
			v, err = d.publishVerified(emb)
		})
		if err != nil {
			return fail(err)
		}
	}
	d.setRetrainInfo(mode, trainDur, emb.Epochs, warmFallback)
	d.serve(emb, tr, gt, v)
	ver := ""
	if v != 0 {
		ver = v.String()
	}
	var extra []string
	if warmFallback != "" {
		extra = append(extra, "warm_fallback: "+warmFallback)
	}
	d.acceptGeneration(snap, rep, ver, extra...)
	return nil
}

// retrainLoop runs periodic retraining under a supervisor: failures retry
// with exponential backoff, and -retrainfail consecutive failures trip the
// circuit breaker — the daemon then stops churning and serves its
// last-good model until restarted.
func (d *daemon) retrainLoop(ctx context.Context) {
	sup := &robust.Supervisor{
		Backoff: d.o.retrainBackoff,
		Breaker: &robust.Breaker{Threshold: d.o.retrainFail},
		Sleep:   d.o.retrainSleep,
		Logf:    d.o.logf,
	}
	ticker := time.NewTicker(d.o.retrain)
	defer ticker.Stop()
	gaveUp := false
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		err := sup.Run(ctx, "retrain", d.retrainOnce)
		switch {
		case err == nil:
			gaveUp = false
		case errors.Is(err, robust.ErrGiveUp):
			if !gaveUp {
				d.o.logf("retrain: %v; serving last-good model until restart", err)
				gaveUp = true
			}
		case errors.Is(err, context.Canceled):
		default:
			d.o.logf("retrain: %v", err)
		}
		if d.o.onRetrain != nil {
			d.o.onRetrain(err)
		}
	}
}
