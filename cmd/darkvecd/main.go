// Command darkvecd trains a DarkVec model on a trace and serves it over
// HTTP: nearest-neighbour pivots, on-demand classification, cluster
// summaries and dataset statistics for SOC tooling.
//
// Usage:
//
//	darkvecd -in trace.csv -feeds feeds/ -listen 127.0.0.1:8080
//
// Endpoints:
//
//	GET /healthz
//	GET /v1/stats
//	GET /v1/similar?ip=1.2.3.4&k=10
//	GET /v1/classify?ip=1.2.3.4&k=7
//	GET /v1/clusters?min=3
//	GET /v1/sender?ip=1.2.3.4
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/darkvec/darkvec/internal/apiserver"
	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "input trace (.csv or .pcap)")
		feedsDir = flag.String("feeds", "", "directory of <class>.txt IP feeds")
		listen   = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		dim      = flag.Int("dim", 50, "embedding dimension V")
		window   = flag.Int("window", 25, "context window c")
		epochs   = flag.Int("epochs", 10, "training epochs")
		kPrime   = flag.Int("kprime", 3, "clustering graph out-degree")
		evalDays = flag.Int("evaldays", 1, "serve the senders of the final N days")
		seed     = flag.Uint64("seed", 1, "training seed")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *feedsDir, *listen, *dim, *window, *epochs, *kPrime, *evalDays, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "darkvecd:", err)
		os.Exit(1)
	}
}

func run(in, feedsDir, listen string, dim, window, epochs, kPrime, evalDays int, seed uint64) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	var tr *trace.Trace
	if strings.HasSuffix(in, ".pcap") {
		tr, _, err = trace.ReadPCAP(f)
	} else {
		tr, err = trace.ReadCSV(f)
	}
	f.Close()
	if err != nil {
		return err
	}

	feeds := map[string][]netutil.IPv4{}
	if feedsDir != "" {
		entries, err := os.ReadDir(feedsDir)
		if err != nil {
			return err
		}
		for _, ent := range entries {
			if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".txt") {
				continue
			}
			ff, err := os.Open(filepath.Join(feedsDir, ent.Name()))
			if err != nil {
				return err
			}
			ips, err := labels.ReadFeed(ff)
			ff.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", ent.Name(), err)
			}
			feeds[strings.TrimSuffix(ent.Name(), ".txt")] = ips
		}
	}
	gt := labels.Build(tr, feeds)

	cfg := core.DefaultConfig()
	cfg.W2V.Dim = dim
	cfg.W2V.Window = window
	cfg.W2V.Epochs = epochs
	cfg.W2V.Seed = seed
	fmt.Printf("training on %d events (%d days)...\n", tr.Len(), tr.Days())
	emb, err := core.TrainEmbedding(tr, cfg)
	if err != nil {
		return err
	}
	space, cov := emb.EvalSpace(tr.LastDays(evalDays), nil)
	fmt.Printf("trained in %s; serving %d senders (coverage %.0f%%)\n",
		emb.TrainTime.Round(time.Millisecond), space.Len(), cov*100)

	srv := apiserver.New(apiserver.Config{
		Space: space, GT: gt, Trace: tr, KPrime: kPrime, Seed: seed,
	})
	httpSrv := &http.Server{
		Addr:              listen,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("listening on http://%s\n", listen)
	return httpSrv.ListenAndServe()
}
