package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/darkvec/darkvec/internal/darksim"
)

func TestRunBadInputs(t *testing.T) {
	if err := run("/missing.csv", "", "127.0.0.1:0", 8, 4, 1, 3, 1, 1); err == nil {
		t.Fatal("missing trace must fail")
	}
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.csv")
	if err := os.WriteFile(junk, []byte("nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(junk, "", "127.0.0.1:0", 8, 4, 1, 3, 1, 1); err == nil {
		t.Fatal("junk trace must fail")
	}
	// Valid trace but missing feeds directory.
	out := darksim.Generate(darksim.Config{Seed: 3, Days: 2, Scale: 0.005, Rate: 0.05})
	tracePath := filepath.Join(dir, "t.csv")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(tracePath, "/missing-feeds", "127.0.0.1:0", 8, 4, 1, 3, 1, 1); err == nil {
		t.Fatal("missing feeds dir must fail")
	}
	// A bogus listen address must fail after training rather than hang.
	if err := run(tracePath, "", "256.0.0.1:99999", 8, 4, 1, 3, 1, 1); err == nil {
		t.Fatal("bad listen address must fail")
	}
}
