package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/darkvec/darkvec/internal/darksim"
	"github.com/darkvec/darkvec/internal/trace"
)

// baseOpts is a fast, valid configuration for tests.
func baseOpts(in string) options {
	return options{
		in:       in,
		listen:   "127.0.0.1:0",
		dim:      8,
		window:   4,
		epochs:   1,
		kPrime:   3,
		evalDays: 1,
		seed:     1,
		drain:    5 * time.Second,
		logf:     func(string, ...any) {},
	}
}

// writeTestTrace materialises a small simulated trace CSV.
func writeTestTrace(t *testing.T, dir string) (string, *trace.Trace) {
	t.Helper()
	out := darksim.Generate(darksim.Config{Seed: 3, Days: 2, Scale: 0.005, Rate: 0.05})
	path := filepath.Join(dir, "t.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, out.Trace
}

func TestValidateFlags(t *testing.T) {
	good := baseOpts("trace.csv")
	if err := good.validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*options)
	}{
		{"missing in", func(o *options) { o.in = "" }},
		{"zero dim", func(o *options) { o.dim = 0 }},
		{"negative dim", func(o *options) { o.dim = -8 }},
		{"zero window", func(o *options) { o.window = 0 }},
		{"zero epochs", func(o *options) { o.epochs = 0 }},
		{"zero kprime", func(o *options) { o.kPrime = 0 }},
		{"zero evaldays", func(o *options) { o.evalDays = 0 }},
		{"negative maxerr", func(o *options) { o.maxErr = -1 }},
		{"resume without checkpoint", func(o *options) { o.resume = true }},
		{"listen no port", func(o *options) { o.listen = "127.0.0.1" }},
		{"listen bad port", func(o *options) { o.listen = "127.0.0.1:99999" }},
		{"listen bad host", func(o *options) { o.listen = "256.0.0.1:8080" }},
	}
	for _, tc := range cases {
		o := baseOpts("trace.csv")
		tc.mutate(&o)
		if err := o.validate(); err == nil {
			t.Errorf("%s: validate() accepted %+v", tc.name, o)
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, baseOpts("/missing.csv")); err == nil {
		t.Fatal("missing trace must fail")
	}
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.csv")
	if err := os.WriteFile(junk, []byte("nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, baseOpts(junk)); err == nil {
		t.Fatal("junk trace must fail")
	}
	tracePath, _ := writeTestTrace(t, dir)
	o := baseOpts(tracePath)
	o.feedsDir = "/missing-feeds"
	if err := run(ctx, o); err == nil {
		t.Fatal("missing feeds dir must fail")
	}
	// A bogus listen address fails validation before any training happens.
	o = baseOpts(tracePath)
	o.listen = "256.0.0.1:99999"
	start := time.Now()
	if err := run(ctx, o); err == nil {
		t.Fatal("bad listen address must fail")
	} else if !strings.Contains(err.Error(), "-listen") {
		t.Fatalf("bad listen error = %v, want flag validation", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("bad listen address must fail fast, not after training")
	}
}

// TestServeLifecycle exercises the whole daemon under -race: liveness
// before readiness, the readiness flip once training lands, a storm of
// concurrent requests, and a SIGTERM-equivalent graceful drain where every
// accepted request completes.
func TestServeLifecycle(t *testing.T) {
	tracePath, _ := writeTestTrace(t, t.TempDir())
	o := baseOpts(tracePath)
	listenCh := make(chan string, 1)
	readyCh := make(chan string, 1)

	get := func(url string) (int, error) {
		resp, err := http.Get(url)
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// onListen runs after the bind but before training starts, so these
	// probes deterministically see the warming-up state: live, not ready,
	// API gated with 503.
	o.onListen = func(addr string) {
		base := "http://" + addr
		if code, err := get(base + "/healthz/live"); err != nil || code != http.StatusOK {
			t.Errorf("liveness during training = %d, %v", code, err)
		}
		if code, err := get(base + "/healthz/ready"); err != nil || code != http.StatusServiceUnavailable {
			t.Errorf("readiness during training = %d, %v (want 503)", code, err)
		}
		if code, err := get(base + "/v1/stats"); err != nil || code != http.StatusServiceUnavailable {
			t.Errorf("gated API during training = %d, %v (want 503)", code, err)
		}
		listenCh <- addr
	}
	o.onReady = func(addr string) { readyCh <- addr }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, o) }()

	base := "http://" + <-listenCh

	select {
	case <-readyCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon never became ready")
	}
	if code, err := get(base + "/healthz/ready"); err != nil || code != http.StatusOK {
		t.Fatalf("readiness after training = %d, %v", code, err)
	}
	if code, err := get(base + "/v1/stats"); err != nil || code != http.StatusOK {
		t.Fatalf("API after ready = %d, %v", code, err)
	}

	// Storm the API concurrently, then pull the plug mid-storm. Completed
	// responses must all be 200; transport errors are legal only once
	// shutdown has begun (new connections refused), never as a dropped
	// in-flight request before it.
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; ; j++ {
				code, err := get(base + "/v1/stats")
				if err != nil {
					if !cancelled.Load() {
						errs <- fmt.Errorf("request failed before shutdown: %v", err)
					}
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("mid-storm status %d", code)
					return
				}
				if cancelled.Load() && j > 2 {
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	cancelled.Store(true)
	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
}

// TestSigtermDuringTraining: cancellation mid-train exits gracefully and
// leaves a resumable checkpoint; a rerun with -resume serves successfully.
func TestSigtermDuringTraining(t *testing.T) {
	dir := t.TempDir()
	tracePath, _ := writeTestTrace(t, dir)
	o := baseOpts(tracePath)
	o.epochs = 500 // long enough that the cancel lands mid-run
	o.checkpoint = filepath.Join(dir, "train.ck")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			if _, err := os.Stat(o.checkpoint); err == nil {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
	if err := run(ctx, o); err != nil {
		t.Fatalf("interrupted run = %v, want graceful nil", err)
	}
	if _, err := os.Stat(o.checkpoint); err != nil {
		t.Fatalf("no resumable checkpoint after interrupt: %v", err)
	}

	// Resume with a short horizon: must finish, become ready, and consume
	// the checkpoint.
	o2 := baseOpts(tracePath)
	o2.epochs = 500
	o2.checkpoint = o.checkpoint
	o2.resume = true
	readyCh := make(chan string, 1)
	o2.onReady = func(addr string) { readyCh <- addr }
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx2, o2) }()
	select {
	case <-readyCh:
	case err := <-runErr:
		t.Fatalf("resumed daemon exited early: %v", err)
	case <-time.After(5 * time.Minute):
		t.Fatal("resumed daemon never became ready")
	}
	cancel2()
	if err := <-runErr; err != nil {
		t.Fatalf("resumed daemon shutdown = %v", err)
	}
	if _, err := os.Stat(o.checkpoint); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not consumed after successful training: %v", err)
	}
}

// TestRunTolerantIngest: a trace with injected garbage rows is rejected in
// strict mode but served under a -maxerr budget.
func TestRunTolerantIngest(t *testing.T) {
	dir := t.TempDir()
	cleanPath, tr := writeTestTrace(t, dir)
	clean, err := os.ReadFile(cleanPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(clean), "\n")
	mid := len(lines) / 2
	dirty := strings.Join(lines[:mid], "") +
		"garbage,row\nnot,even,close,to,a,record,at,all\n" +
		strings.Join(lines[mid:], "")
	dirtyPath := filepath.Join(dir, "dirty.csv")
	if err := os.WriteFile(dirtyPath, []byte(dirty), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run(context.Background(), baseOpts(dirtyPath)); err == nil {
		t.Fatal("strict mode must reject the dirty trace")
	}

	o := baseOpts(dirtyPath)
	o.maxErr = 10
	var report string
	o.logf = func(format string, args ...any) {
		s := fmt.Sprintf(format, args...)
		if strings.Contains(s, "skipped") {
			report = s
		}
	}
	readyCh := make(chan string, 1)
	o.onReady = func(addr string) { readyCh <- addr }
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, o) }()
	select {
	case <-readyCh:
	case err := <-runErr:
		t.Fatalf("tolerant daemon exited early: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("tolerant daemon never became ready")
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("tolerant daemon shutdown = %v", err)
	}
	if !strings.Contains(report, "2 skipped") {
		t.Fatalf("ingest report not printed or wrong: %q (trace len %d)", report, tr.Len())
	}
}
