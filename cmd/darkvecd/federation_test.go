package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/darkvec/darkvec/internal/federation"
	"github.com/darkvec/darkvec/internal/robust"
	"github.com/darkvec/darkvec/internal/stream"
)

// degradedDaemon assembles a daemon in the worst overlapping degradation:
// last retrain drift-rejected AND the live feed stalled.
func degradedDaemon(t *testing.T) *daemon {
	t.Helper()
	d := &daemon{o: options{logf: func(string, ...any) {}}, gate: robust.NewGate()}
	d.gate.Set(http.NotFoundHandler()) // any handler: makes the gate "ready"
	d.status.lastErr.Store("candidate rejected")
	d.status.stale.Store(true)
	d.status.driftReject.Store(true)
	d.ing = stream.New(stream.Config{StallAfter: time.Nanosecond})
	t.Cleanup(func() { d.ing.Close() })
	deadline := time.Now().Add(2 * time.Second)
	for !d.ing.Stalled() {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never tripped")
		}
		time.Sleep(time.Millisecond)
	}
	return d
}

// TestDegradedReasonsSortedByCause pins the ordering contract: however the
// causes accumulate at runtime, /healthz/ready lists degraded_reasons
// sorted by cause name. (The natural accumulation order is drift_rejected,
// stale_model, ingest_stalled — this test exists to catch anyone restoring
// that accidental ordering.)
func TestDegradedReasonsSortedByCause(t *testing.T) {
	d := degradedDaemon(t)
	rec := httptest.NewRecorder()
	d.handleReady(rec, httptest.NewRequest(http.MethodGet, "/healthz/ready", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("ready -> %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	raw, _ := body["degraded_reasons"].([]any)
	var reasons []string
	for _, r := range raw {
		reasons = append(reasons, r.(string))
	}
	want := []string{"drift_rejected", "ingest_stalled", "stale_model"}
	if !reflect.DeepEqual(reasons, want) {
		t.Fatalf("degraded_reasons = %v, want %v (sorted by cause)", reasons, want)
	}
	if !sort.StringsAreSorted(reasons) {
		t.Fatalf("degraded_reasons not sorted: %v", reasons)
	}
}

// TestStaleReasonHeaderSortedByCause pins the same contract on the
// "; "-joined stale-reason header: details appear in cause-name order —
// drift_rejected before ingest_stalled, ingest_stalled before stale_model.
func TestStaleReasonHeaderSortedByCause(t *testing.T) {
	d := degradedDaemon(t)
	ok, reason := d.stale()
	if !ok {
		t.Fatal("degraded daemon reports not stale")
	}
	parts := strings.Split(reason, "; ")
	if len(parts) != 2 {
		t.Fatalf("stale reason = %q, want two '; '-joined details", reason)
	}
	if !strings.Contains(parts[0], "drift") || !strings.Contains(parts[1], "silent") {
		t.Fatalf("stale reason order = %q, want drift_rejected detail before ingest_stalled detail", reason)
	}

	// The non-drift branch: ingest_stalled sorts before stale_model.
	d.status.driftReject.Store(false)
	_, reason = d.stale()
	parts = strings.Split(reason, "; ")
	if len(parts) != 2 || !strings.Contains(parts[0], "silent") || !strings.Contains(parts[1], "retrain failed") {
		t.Fatalf("stale reason order = %q, want ingest_stalled detail before stale_model detail", reason)
	}
}

// TestInternExportEndToEnd boots a full daemon (static trace, model store)
// and exercises /v1/intern: the export is vantage-stamped, carries the
// serving generation, pages correctly, and covers the senders the model
// serves.
func TestInternExportEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in, tr := writeTestTrace(t, dir)
	o := baseOpts(in)
	o.vantage = "north"
	o.store = dir + "/store"
	readyCh := make(chan string, 1)
	o.onReady = func(addr string) { readyCh <- addr }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, o) }()

	var base string
	select {
	case addr := <-readyCh:
		base = "http://" + addr
	case err := <-runErr:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon never became ready")
	}

	fetch := func(path string) federation.InternPage {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s -> %d", path, resp.StatusCode)
		}
		var page federation.InternPage
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	page := fetch("/v1/intern")
	if page.Vantage != "north" || page.Epoch == "" {
		t.Fatalf("export identity = %+v", page)
	}
	if page.Generation != "v000001" {
		t.Fatalf("generation = %q, want v000001 (the published boot model)", page.Generation)
	}
	if page.Total == 0 || len(page.Senders) != page.Total {
		t.Fatalf("export holds %d/%d senders", len(page.Senders), page.Total)
	}
	// The export is the training id space: a subset of the trace's sources
	// (the corpus builder interns only senders that pass the active filter),
	// dense and duplicate-free.
	distinct := map[string]bool{}
	for _, e := range tr.Events {
		distinct[e.Src.String()] = true
	}
	seen := map[string]bool{}
	for _, s := range page.Senders {
		if !distinct[s] {
			t.Fatalf("exported sender %s not in the trace", s)
		}
		if seen[s] {
			t.Fatalf("exported sender %s twice", s)
		}
		seen[s] = true
	}
	// Paging tiles the same table.
	var paged []string
	for off := 0; off < page.Total; {
		p := fetch(fmt.Sprintf("/v1/intern?offset=%d&limit=7", off))
		paged = append(paged, p.Senders...)
		off += len(p.Senders)
	}
	if !reflect.DeepEqual(paged, page.Senders) {
		t.Fatalf("paged export differs from full export")
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}
