package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/darkvec/darkvec/internal/robust"
	"github.com/darkvec/darkvec/internal/stream"
	"github.com/darkvec/darkvec/internal/trace"
	"github.com/darkvec/darkvec/internal/wal"
)

// live reports whether the daemon ingests a live feed instead of (or in
// addition to) a static trace file.
func (o *options) live() bool { return o.ingest != "" || o.follow != "" }

// parsePolicy maps the -ingestpolicy flag to a stream.DropPolicy.
func parsePolicy(s string) (stream.DropPolicy, error) {
	switch s {
	case "", "shed-newest":
		return stream.ShedNewest, nil
	case "drop-oldest":
		return stream.DropOldest, nil
	}
	return 0, fmt.Errorf("invalid -ingestpolicy %q: want shed-newest or drop-oldest", s)
}

// listenIngest binds the live-feed listener: "unix:/path/to.sock" for a
// unix socket (a stale socket file from a crashed run is removed first),
// anything else as a TCP host:port.
func listenIngest(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		if _, err := os.Stat(path); err == nil {
			_ = os.Remove(path)
		}
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

// startIngest builds the ingestor, seeds its window, and starts the
// configured sources. The returned ingestor is live immediately; events
// buffer in the window until the retrain loop picks them up.
func (d *daemon) startIngest() error {
	o := d.o
	policy, err := parsePolicy(o.ingestPolicy)
	if err != nil {
		return err
	}
	cfg := stream.Config{
		QueueSize: o.ingestQueue,
		Policy:    policy,
		Vantage:   o.vantage,
		Window: stream.WindowConfig{
			MaxEvents: o.ingestCap,
			MaxAge:    int64(o.ingestAge.Seconds()),
		},
		Budget:      robust.Budget{MaxErrors: o.maxErr},
		IdleTimeout: o.ingestIdle,
		Rate:        o.ingestRate,
		StallAfter:  o.ingestStall,
		Logf:        o.logf,
	}
	if o.wal != "" {
		fsync := o.walFsync
		if fsync == "" {
			fsync = "always" // options built in code default like the CLI
		}
		pol, err := wal.ParseSyncPolicy(fsync)
		if err != nil {
			return err
		}
		d.walLog, err = wal.Open(o.wal, wal.Options{
			SegmentBytes: o.walSeg,
			Policy:       pol,
			// The window's hard age cap is the compaction bound: a sealed
			// segment whose newest event the window would evict on sight
			// can never matter to a reboot. Evaluated lazily so it is safe
			// before the ingestor exists.
			Horizon: func() int64 {
				if d.ing == nil {
					return 0
				}
				return d.ing.Window().AgeHorizon()
			},
			// A CRC-intact record that does not decode as an event goes
			// through the same quarantine budget as a malformed wire line:
			// replay admits exactly what ingestion would have.
			Quarantine: func(derr error) error {
				d.walQuarantined++
				return d.ing.Report().Skip(robust.Budget{MaxErrors: o.maxErr}, fmt.Errorf("wal replay: %w", derr))
			},
			Logf: o.logf,
			Wrap: o.walWrap,
		})
		if err != nil {
			return err
		}
		cfg.Log = d.walLog
	}
	d.ing = stream.New(cfg)

	// Rebuild the window from the WAL first: it holds everything accepted
	// up to the crash (per fsync policy), a strict superset of what a
	// clean shutdown would have flushed. Replayed events are accounted as
	// parsed records so /v1/ingest shows parsed = replayed + quarantined
	// exactly after a recovery boot.
	if d.walLog != nil {
		win, rep := d.ing.Window(), d.ing.Report()
		if err := d.walLog.Replay(func(e trace.Event) error {
			rep.Record()
			win.Add(e)
			d.walReplayed++
			return nil
		}); err != nil {
			d.ing.Close()
			d.closeWAL()
			return fmt.Errorf("wal replay: %w", err)
		}
		if d.walReplayed > 0 || d.walQuarantined > 0 {
			o.logf("wal: rebuilt window from %s: %d events replayed, %d quarantined", o.wal, d.walReplayed, d.walQuarantined)
		}
	}

	// Seed the window so a restart (or a static -in base corpus) does not
	// begin from an empty model horizon: the previous run's flushed window
	// — unless the WAL already rebuilt it, which supersedes the flush (the
	// flush is at best a clean-shutdown subset of the log) — then the -in
	// trace. Seeds bypass the wire pipeline and the WAL: the log holds
	// live-accepted events only, so replay never doubles a seed.
	if o.flush != "" && d.walReplayed == 0 {
		if st, err := os.Stat(o.flush); err == nil && st.Size() > 0 {
			tr, rep, err := trace.ReadFile(o.flush, o.maxErr)
			if err != nil {
				return fmt.Errorf("seed from -flush: %w", err)
			}
			d.ing.Window().AddBatch(tr.Events)
			o.logf("seeded window with %d events from %s (%s)", tr.Len(), o.flush, rep)
		}
	}
	if o.in != "" {
		tr, rep, err := trace.ReadFile(o.in, o.maxErr)
		if err != nil {
			return fmt.Errorf("seed from -in: %w", err)
		}
		d.ing.Window().AddBatch(tr.Events)
		o.logf("seeded window with %d events from %s (%s)", tr.Len(), o.in, rep)
	}

	if o.ingest != "" {
		ln, err := listenIngest(o.ingest)
		if err != nil {
			d.ing.Close()
			return err
		}
		go func() {
			if err := d.ing.Serve(ln); err != nil {
				o.logf("ingest: %v", err)
			}
		}()
		o.logf("ingesting live feed on %s", ln.Addr())
		if o.onIngestListen != nil {
			o.onIngestListen(ln.Addr().String())
		}
	}
	if o.follow != "" {
		go func() {
			if err := d.ing.Follow(o.follow, 0); err != nil {
				o.logf("ingest follow %s: %v", o.follow, err)
			}
		}()
		o.logf("following %s", o.follow)
	}
	return nil
}

// handleIngest serves /v1/ingest: the pipeline's full counter set —
// accept/drop/quarantine accounting, window bounds, stall state, and (when
// WAL-backed) the durability log's counters including boot replay. The
// stream.Stats fields stay at the top level, so consumers predating the
// WAL decode unchanged. Ungated: it must answer while the first model is
// still training.
func (d *daemon) handleIngest(w http.ResponseWriter, _ *http.Request) {
	type walStatus struct {
		wal.Stats
		Replayed          int64 `json:"replayed"`
		ReplayQuarantined int64 `json:"replay_quarantined"`
	}
	resp := struct {
		stream.Stats
		WAL *walStatus `json:"wal,omitempty"`
	}{Stats: d.ing.Stats()}
	if d.walLog != nil {
		resp.WAL = &walStatus{
			Stats:             d.walLog.Stats(),
			Replayed:          d.walReplayed,
			ReplayQuarantined: d.walQuarantined,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// closeWAL flushes and closes the durability log; the segments stay on
// disk for the next boot's replay. Safe on a nil log and idempotent.
func (d *daemon) closeWAL() {
	if d.walLog == nil {
		return
	}
	if err := d.walLog.Close(); err != nil {
		d.o.logf("wal: close: %v", err)
	}
}

// stale is the serving-path degradation predicate: a failed retrain (an
// older generation deliberately kept on the air, with a drift rejection
// called out specifically) or a stalled live feed (a model aging against
// a silent darknet) mark every response. Overlapping causes are joined
// with "; " in cause-name order — the same ordering /healthz/ready's
// degraded_reasons uses — so the header is deterministic and scriptable.
func (d *daemon) stale() (bool, string) {
	type cause struct{ name, detail string }
	var causes []cause
	if d.status.stale.Load() {
		if d.status.driftReject.Load() {
			causes = append(causes, cause{"drift_rejected", "drift gate rejected retrain (serving previous generation)"})
		} else {
			causes = append(causes, cause{"stale_model", "retrain failed (serving previous generation)"})
		}
	}
	if d.ing != nil && d.ing.Stalled() {
		causes = append(causes, cause{"ingest_stalled", fmt.Sprintf("live feed silent for %s", d.ing.Silence().Round(1e9))})
	}
	if d.walLog != nil {
		if n := d.ing.Stats().LogFailed; n > 0 {
			causes = append(causes, cause{"wal_degraded", fmt.Sprintf("%d events in the window lack durability (WAL append/fsync failed)", n)})
		}
	}
	if len(causes) == 0 {
		return false, ""
	}
	sort.Slice(causes, func(i, j int) bool { return causes[i].name < causes[j].name })
	details := make([]string, len(causes))
	for i, c := range causes {
		details[i] = c.detail
	}
	return true, strings.Join(details, "; ")
}

// flushWindow drains the rolling window to -flush atomically (tmp +
// rename), so the next boot re-seeds from exactly what was buffered and a
// crash mid-flush never leaves a torn file where a good seed used to be.
func (d *daemon) flushWindow() error {
	if d.o.flush == "" || d.ing == nil {
		return nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(d.o.flush), ".flush-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := d.ing.Window().WriteCSV(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), d.o.flush); err != nil {
		return err
	}
	d.o.logf("flushed %d window events to %s", d.ing.Window().Len(), d.o.flush)
	return nil
}
