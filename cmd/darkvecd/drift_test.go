package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/darkvec/darkvec/internal/darksim"
	"github.com/darkvec/darkvec/internal/robust"
)

// driftBody decodes /v1/drift.
func driftBody(t *testing.T, base string) map[string]any {
	t.Helper()
	code, _, body := getFull(t, base+"/v1/drift")
	if code != http.StatusOK {
		t.Fatalf("/v1/drift = %d, body %s", code, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("/v1/drift decode: %v", err)
	}
	return out
}

// readyBody decodes /healthz/ready regardless of status code.
func readyBody(t *testing.T, base string) map[string]any {
	t.Helper()
	_, _, body := getFull(t, base+"/healthz/ready")
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("/healthz/ready decode: %v", err)
	}
	return out
}

// hasReason reports whether a decoded degraded_reasons list contains s.
func hasReason(body map[string]any, s string) bool {
	list, _ := body["degraded_reasons"].([]any)
	for _, r := range list {
		if r == s {
			return true
		}
	}
	return false
}

// TestDriftGateRejectsSybilFlood is the acceptance arc for the quality
// gate: a live, store-managed daemon with a churn budget is hit by a
// sybil flood (hundreds of fresh coordinated senders streamed into the
// live window). The next retrain must be rejected before publish — the
// serving generation never changes, no request is dropped, the stale
// header names the drift rejection, /healthz/ready composes the
// degraded reasons (drift rejection + stale model + the now-silent
// feed), /v1/drift reports the verdict, and the PR-2 breaker semantics
// stop the churn after -retrainfail consecutive rejections. The gate
// history must survive on disk next to the MANIFEST.
func TestDriftGateRejectsSybilFlood(t *testing.T) {
	dir := t.TempDir()
	tracePath, baseTr := writeTestTrace(t, dir)
	storeDir := filepath.Join(dir, "store")

	o := liveOpts()
	o.in = tracePath // seeds the window: boot-path training, instant readiness
	o.store = storeDir
	o.retrainFail = 2
	o.retrainSleep = fastSleep
	o.retrainBackoff = robust.Backoff{Base: time.Millisecond, Max: time.Millisecond}
	o.ingestStall = 500 * time.Millisecond
	o.driftChurn = 0.5 // arms the gate; a sybil flood churns ~100% of the eval window
	outcomes := make(chan error, 64)
	o.onRetrain = func(err error) {
		select {
		case outcomes <- err:
		default:
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	httpAddr, ingestAddr, readyCh, runErr := startLive(t, ctx, o)
	base := "http://" + httpAddr
	select {
	case <-readyCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("seeded live daemon never became ready")
	}

	// The boot generation armed the gate.
	db := driftBody(t, base)
	if db["enabled"] != true || db["baseline"] == nil {
		t.Fatalf("gate not armed after boot: %v", db)
	}

	// The flood: fresh coordinated senders, each just above the active
	// filter, starting where the base trace ends so window age bounds
	// cannot evict them.
	end := baseTr.Events[len(baseTr.Events)-1].Ts + 1
	atk, err := darksim.Attack(darksim.AttackConfig{
		Kind: darksim.AttackSybil, Senders: 200, Start: end,
	})
	if err != nil {
		t.Fatal(err)
	}
	streamTrace(t, ingestAddr, atk.Trace)

	// Every retrain that sees the flood must be rejected; the breaker
	// then gives up. Meanwhile the old generation answers every request.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("gate never rejected the sybil retrain")
		}
		code, _, _ := getFull(t, base+"/v1/stats")
		if code != http.StatusOK {
			t.Fatalf("stats during the attack = %d — the previous generation must keep serving", code)
		}
		if driftBody(t, base)["rejected"] == true {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The serving generation is exactly the gate's baseline, and it
	// holds steady while rejections continue.
	db = driftBody(t, base)
	baseline, _ := db["baseline"].(map[string]any)
	want, _ := baseline["version"].(string)
	if want == "" {
		t.Fatalf("no baseline version in %v", db)
	}
	for i := 0; i < 20; i++ {
		code, hdr, _ := getFull(t, base+"/v1/stats")
		if code != http.StatusOK {
			t.Fatalf("stats after rejection = %d", code)
		}
		if got := hdr.Get("X-DarkVec-Model-Version"); got != want {
			t.Fatalf("serving %q after rejection, want the gate baseline %q", got, want)
		}
		if hdr.Get("X-DarkVec-Model-Stale") != "true" {
			t.Fatal("rejected retrain did not mark responses stale")
		}
		if r := hdr.Get("X-DarkVec-Model-Stale-Reason"); !strings.Contains(r, "drift") {
			t.Fatalf("staleness reason %q does not name the drift gate", r)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The decision log carries the rejection with its budget violation.
	decs, _ := db["decisions"].([]any)
	if len(decs) == 0 {
		t.Fatal("no gate decisions recorded")
	}
	lastDec, _ := decs[len(decs)-1].(map[string]any)
	if lastDec["accepted"] != false {
		t.Fatalf("last decision = %v, want a rejection", lastDec)
	}
	reasons, _ := lastDec["reasons"].([]any)
	if len(reasons) == 0 || !strings.Contains(reasons[0].(string), "churn") {
		t.Fatalf("rejection reasons = %v, want a churn violation", reasons)
	}
	rep, _ := db["last_report"].(map[string]any)
	if churn, _ := rep["vocab_churn"].(float64); churn <= 0.5 {
		t.Fatalf("reported churn %v, want > the 0.5 budget", churn)
	}

	// PR-2 semantics preserved: consecutive rejections burn the breaker
	// exactly like corrupt publishes.
	sawGiveUp := false
	giveUpDeadline := time.After(2 * time.Minute)
	for !sawGiveUp {
		select {
		case err := <-outcomes:
			if errors.Is(err, robust.ErrGiveUp) {
				if !strings.Contains(err.Error(), "drift") {
					t.Fatalf("breaker gave up on %v, want a drift rejection", err)
				}
				sawGiveUp = true
			}
		case <-giveUpDeadline:
			t.Fatal("breaker never gave up on the drifting retrains")
		}
	}

	// With the feed silent since the flood ended, the stall joins the
	// composition: all three degraded causes listed at once.
	deadline = time.Now().Add(30 * time.Second)
	var ready map[string]any
	for {
		if time.Now().After(deadline) {
			t.Fatalf("degraded reasons never composed: %v", ready)
		}
		ready = readyBody(t, base)
		if hasReason(ready, "drift_rejected") && hasReason(ready, "stale_model") && hasReason(ready, "ingest_stalled") {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if ready["status"] != "degraded" || ready["stale"] != true {
		t.Fatalf("composed ready body = %v", ready)
	}
	_, hdr, _ := getFull(t, base+"/v1/stats")
	if r := hdr.Get("X-DarkVec-Model-Stale-Reason"); !strings.Contains(r, "drift") || !strings.Contains(r, "silent") {
		t.Fatalf("joined staleness reason %q must name both causes", r)
	}

	// The gate history is persisted with the artifacts.
	if _, err := os.Stat(filepath.Join(storeDir, "drift.aux")); err != nil {
		t.Fatalf("drift history sidecar missing: %v", err)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit")
	}

	// A restart recovers the decision trajectory from the sidecar.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	o2 := o
	o2.onRetrain = nil
	httpAddr2, _, readyCh2, runErr2 := startLive(t, ctx2, o2)
	select {
	case <-readyCh2:
	case err := <-runErr2:
		t.Fatalf("re-boot exited before ready: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("re-boot never became ready")
	}
	db2 := driftBody(t, "http://"+httpAddr2)
	recovered, _ := db2["decisions"].([]any)
	if len(recovered) == 0 {
		t.Fatal("gate decisions did not survive the restart")
	}
	cancel2()
	if err := <-runErr2; err != nil {
		t.Fatalf("re-boot shutdown: %v", err)
	}
}

func TestValidateDriftFlags(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
	}{
		{"score budget above 1", func(o *options) { o.driftMax = 1.5 }},
		{"negative churn budget", func(o *options) { o.driftChurn = -0.1 }},
		{"overlap above 1", func(o *options) { o.driftOverlap = 2 }},
		{"negative driftk", func(o *options) { o.driftK = -1 }},
		{"negative drifthist", func(o *options) { o.driftHist = -1 }},
		{"budgets without retrain", func(o *options) { o.retrain = 0; o.driftMax = 0.5 }},
	}
	for _, tc := range cases {
		o := liveOpts()
		tc.mutate(&o)
		if err := o.validate(); err == nil {
			t.Errorf("%s: validate() accepted %+v", tc.name, o)
		}
	}
	good := liveOpts()
	good.driftMax = 0.4
	good.driftChurn = 0.3
	if err := good.validate(); err != nil {
		t.Fatalf("valid drift options rejected: %v", err)
	}
}
