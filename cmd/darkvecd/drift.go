package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/drift"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/modelstore"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/trace"
)

// auxDrift is the modelstore sidecar slot holding the gate history.
const auxDrift = "drift"

// driftState is the daemon's view of the quality gate: the accepted
// baseline snapshot the next candidate is compared against, the most
// recent comparison report (accepted or rejected), and the bounded
// decision log persisted alongside the MANIFEST.
type driftState struct {
	mu   sync.Mutex
	prev *drift.Snapshot
	last *drift.Report
	seq  int // candidate counter for naming unmanaged generations
	hist *drift.History
}

// budgets assembles the gate limits from the flags. The zero value —
// no -drift* flag set — disables the gate entirely.
func (o *options) budgets() drift.Budgets {
	return drift.Budgets{
		MaxScore:               o.driftMax,
		MaxVocabChurn:          o.driftChurn,
		MinNeighborhoodOverlap: o.driftOverlap,
		MaxSilhouetteDrop:      o.driftSilDrop,
		MaxClassShift:          o.driftShift,
		MaxNewClusterFrac:      o.driftNew,
	}
}

// driftEnabled reports whether any gate budget is configured.
func (d *daemon) driftEnabled() bool { return d.o.budgets().Enabled() }

// initDrift builds the in-memory gate state and, when a store is
// attached, recovers the persisted decision history. A missing or
// corrupt sidecar is not an error — the history is derived state, so
// the daemon starts a fresh log and keeps going.
func (d *daemon) initDrift() {
	d.drift.hist = drift.NewHistory(d.o.driftHist)
	if d.st == nil || !d.driftEnabled() {
		return
	}
	rc, err := d.st.OpenAux(auxDrift)
	if err != nil {
		if !errors.Is(err, modelstore.ErrNoAux) {
			d.o.logf("drift: history sidecar unreadable (starting fresh): %v", err)
		}
		return
	}
	h, lerr := drift.LoadHistory(rc, d.o.driftHist)
	rc.Close()
	if lerr != nil {
		d.o.logf("drift: history sidecar corrupt (starting fresh): %v", lerr)
		return
	}
	d.drift.hist = h
	d.o.logf("drift: recovered %d gate decisions", h.Len())
}

// captureGeneration freezes a candidate (or freshly booted) generation
// for comparison: the eval-window space, its clustering, ground-truth
// classes for the per-class shift table, and interner ids as stable
// matching keys so the same sender is recognised across retrains.
func (d *daemon) captureGeneration(emb *core.Embedding, tr *trace.Trace, gt *labels.Set, version string) (*drift.Snapshot, error) {
	space, _ := emb.EvalSpace(tr.LastDays(d.o.evalDays), nil)
	cl := core.Cluster(space, d.o.kPrime, d.o.seed)
	in := d.trainInterner()
	classFn := func(word string) string {
		ip, err := netutil.ParseIPv4(word)
		if err != nil {
			return ""
		}
		if c := gt.Class(ip); c != labels.Unknown {
			return c
		}
		return ""
	}
	idFn := func(word string) (uint32, bool) {
		ip, err := netutil.ParseIPv4(word)
		if err != nil {
			return 0, false
		}
		return in.ID(ip)
	}
	return drift.Capture(space, cl.Assign, version, classFn, idFn)
}

// gateCheck compares a candidate against the accepted baseline and
// evaluates the budgets. A nil report (and no reasons) means there is no
// baseline yet — the candidate is the baseline.
func (d *daemon) gateCheck(snap *drift.Snapshot) (*drift.Report, []string, error) {
	d.drift.mu.Lock()
	prev := d.drift.prev
	d.drift.mu.Unlock()
	if prev == nil {
		return nil, nil, nil
	}
	rep, err := drift.Compare(prev, snap, drift.Options{K: d.o.driftK})
	if err != nil {
		return nil, nil, err
	}
	return rep, d.o.budgets().Evaluate(rep), nil
}

// recordDecision appends a gate verdict to the history and persists the
// log through the store's crash-safe sidecar (best effort: a failed
// persist never fails the cycle that produced the decision).
func (d *daemon) recordDecision(dec drift.Decision) {
	d.drift.hist.Add(dec)
	if d.st == nil {
		return
	}
	if err := d.st.SaveAux(auxDrift, d.drift.hist.Save); err != nil {
		d.o.logf("drift: persisting history: %v", err)
	}
}

// nextCandidateName labels a candidate before its store version exists.
func (d *daemon) nextCandidateName() string {
	d.drift.mu.Lock()
	d.drift.seq++
	n := d.drift.seq
	d.drift.mu.Unlock()
	return fmt.Sprintf("candidate-%d", n)
}

// rejectCandidate records the gate verdict, marks the daemon degraded
// with a drift-specific reason, and returns the error the supervisor
// retries on — the exact failure shape of a failed load-back, so the
// backoff/breaker machinery needs no special cases.
func (d *daemon) rejectCandidate(snap *drift.Snapshot, rep *drift.Report, reasons []string) error {
	d.drift.mu.Lock()
	d.drift.last = rep
	baseline := ""
	if d.drift.prev != nil {
		baseline = d.drift.prev.Version
	}
	d.drift.mu.Unlock()
	d.recordDecision(drift.Decision{
		Unix:      time.Now().Unix(),
		Candidate: snap.Version,
		Baseline:  baseline,
		Accepted:  false,
		Reasons:   reasons,
		Report:    rep,
	})
	d.status.driftReject.Store(true)
	return fmt.Errorf("%w: %s", drift.ErrRejected, strings.Join(reasons, "; "))
}

// acceptGeneration installs an accepted snapshot as the new comparison
// baseline under its final (published) name and records the decision.
// The first generation has no report; it is logged as the baseline.
// extraReasons annotate an accepted decision with cycle context — e.g. a
// warm-start that had to fall back to cold — without changing the verdict.
func (d *daemon) acceptGeneration(snap *drift.Snapshot, rep *drift.Report, version string, extraReasons ...string) {
	if snap == nil {
		return
	}
	if version != "" {
		snap.Version = version
	}
	if rep != nil {
		rep.NextVersion = snap.Version
	}
	d.drift.mu.Lock()
	baseline := ""
	if d.drift.prev != nil {
		baseline = d.drift.prev.Version
	}
	d.drift.prev = snap
	d.drift.last = rep
	d.drift.mu.Unlock()
	dec := drift.Decision{
		Unix:      time.Now().Unix(),
		Candidate: snap.Version,
		Baseline:  baseline,
		Accepted:  true,
		Report:    rep,
	}
	if rep == nil {
		dec.Reasons = []string{"baseline"}
	}
	dec.Reasons = append(dec.Reasons, extraReasons...)
	d.recordDecision(dec)
}

// driftBootstrap captures the boot-time generation (trained or loaded
// from the store) as the gate's first baseline. Best effort: a capture
// failure leaves the gate waiting for the first retrain to seed it.
func (d *daemon) driftBootstrap(emb *core.Embedding, tr *trace.Trace, gt *labels.Set, v modelstore.Version) {
	if emb == nil || !d.driftEnabled() {
		return
	}
	name := d.nextCandidateName()
	if v != 0 {
		name = v.String()
	}
	snap, err := d.captureGeneration(emb, tr, gt, name)
	if err != nil {
		d.o.logf("drift: baseline capture: %v", err)
		return
	}
	d.acceptGeneration(snap, nil, "")
	d.o.logf("drift: gate armed; baseline %s (%d senders)", snap.Version, snap.Rows())
}

// handleDrift serves /v1/drift: gate configuration, the current
// baseline, the latest comparison report and the decision log. Ungated,
// like /v1/ingest — the drift trajectory must be inspectable while a
// retrain (or the first training run) is still in flight.
func (d *daemon) handleDrift(w http.ResponseWriter, _ *http.Request) {
	b := d.o.budgets()
	d.drift.mu.Lock()
	prev := d.drift.prev
	last := d.drift.last
	d.drift.mu.Unlock()
	resp := map[string]any{
		"enabled":  b.Enabled(),
		"rejected": d.status.driftReject.Load(),
	}
	if b.Enabled() {
		resp["budgets"] = b
	}
	if prev != nil {
		resp["baseline"] = map[string]any{
			"version":  prev.Version,
			"senders":  prev.Rows(),
			"mean_sil": prev.MeanSil,
		}
	}
	if last != nil {
		resp["last_report"] = last
	}
	resp["decisions"] = d.drift.hist.Decisions()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
