package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/modelstore"
	"github.com/darkvec/darkvec/internal/robust"
	"github.com/darkvec/darkvec/internal/robust/faultio"
	"github.com/darkvec/darkvec/internal/trace"
)

// seedStore trains a tiny model (same knobs as baseOpts) and publishes it
// as the store's first generation, simulating a previous daemon run.
func seedStore(t *testing.T, storeDir string, tr *trace.Trace) modelstore.Version {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.W2V.Dim = 8
	cfg.W2V.Window = 4
	cfg.W2V.Epochs = 1
	cfg.W2V.Seed = 1
	emb, err := core.TrainEmbedding(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := modelstore.Open(storeDir, modelstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := st.Publish(func(w io.Writer) error { return emb.Model.Save(w) })
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// getFull fetches a URL and returns status, headers and body.
func getFull(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func startDaemon(t *testing.T, o options) (base string, cancel context.CancelFunc, runErr chan error) {
	t.Helper()
	readyCh := make(chan string, 1)
	prevReady := o.onReady
	o.onReady = func(addr string) {
		if prevReady != nil {
			prevReady(addr)
		}
		readyCh <- addr
	}
	ctx, cancelFn := context.WithCancel(context.Background())
	runErr = make(chan error, 1)
	go func() { runErr <- run(ctx, o) }()
	select {
	case addr := <-readyCh:
		return "http://" + addr, cancelFn, runErr
	case err := <-runErr:
		cancelFn()
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(2 * time.Minute):
		cancelFn()
		t.Fatal("daemon never became ready")
	}
	return "", cancelFn, runErr
}

func stopDaemon(t *testing.T, cancel context.CancelFunc, runErr chan error) {
	t.Helper()
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("daemon shutdown = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit")
	}
}

// TestBootFromStore is the kill -9 recovery guarantee: a store whose
// newest artifact is garbage (a publish torn apart by a crash or a bad
// disk) boots the daemon on the previous intact generation, without
// retraining, and quarantines the corrupt one.
func TestBootFromStore(t *testing.T) {
	dir := t.TempDir()
	tracePath, tr := writeTestTrace(t, dir)
	storeDir := filepath.Join(dir, "store")
	v1 := seedStore(t, storeDir, tr)

	// A corrupt newer generation, as a crashed-then-corrupted disk would
	// leave it: framed like an artifact name but unreadable.
	garbage := filepath.Join(storeDir, "v000002.model")
	if err := os.WriteFile(garbage, []byte("definitely not a model"), 0o644); err != nil {
		t.Fatal(err)
	}

	o := baseOpts(tracePath)
	o.store = storeDir
	var booted atomic.Bool
	o.logf = func(format string, args ...any) {
		if strings.Contains(format, "booted from store") {
			booted.Store(true)
		}
	}
	base, cancel, runErr := startDaemon(t, o)
	defer stopDaemon(t, cancel, runErr)

	if !booted.Load() {
		t.Error("daemon trained instead of booting from the store")
	}
	code, hdr, body := getFull(t, base+"/healthz/ready")
	if code != http.StatusOK {
		t.Fatalf("ready = %d, body %s", code, body)
	}
	var ready map[string]any
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready["status"] != "ready" || ready["model_version"] != v1.String() {
		t.Fatalf("ready body = %v", ready)
	}
	code, hdr, _ = getFull(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if got := hdr.Get("X-DarkVec-Model-Version"); got != v1.String() {
		t.Fatalf("version header = %q, want %q", got, v1)
	}
	if hdr.Get("X-DarkVec-Model-Stale") != "" {
		t.Fatal("freshly booted daemon marked stale")
	}
	if _, err := os.Stat(garbage + ".corrupt"); err != nil {
		t.Fatalf("corrupt artifact not quarantined: %v", err)
	}
	if _, err := os.Stat(garbage); !os.IsNotExist(err) {
		t.Fatal("corrupt artifact still live in the store")
	}
}

// fastSleep keeps supervisor backoff out of wall-clock time in tests.
func fastSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// TestRetrainSwapAndRollback drives a full degradation-and-recovery arc:
// retrains that publish corrupt artifacts must leave the old generation
// serving (stale header, degraded readiness, version unchanged), and once
// the fault clears a retrain swaps a new generation in and the degraded
// markers disappear.
func TestRetrainSwapAndRollback(t *testing.T) {
	dir := t.TempDir()
	tracePath, _ := writeTestTrace(t, dir)
	storeDir := filepath.Join(dir, "store")

	var corrupt atomic.Bool
	o := baseOpts(tracePath)
	o.store = storeDir
	o.retrain = 20 * time.Millisecond
	o.retrainFail = 100000 // breaker must not trip in this test
	o.retrainSleep = fastSleep
	o.retrainBackoff = robust.Backoff{Base: time.Millisecond, Max: time.Millisecond}
	o.trainWrap = func(w io.Writer) io.Writer {
		if corrupt.Load() {
			// Damage a byte past the w2v header on its way into the store:
			// the store's outer checksum seals the damaged bytes (so the
			// frame is "intact"), only the model's inner checksum can tell.
			return faultio.CorruptWriter(w, 64, 0x80)
		}
		return w
	}
	base, cancel, runErr := startDaemon(t, o)
	defer stopDaemon(t, cancel, runErr)

	_, hdr, _ := getFull(t, base+"/v1/stats")
	v1 := hdr.Get("X-DarkVec-Model-Version")
	if v1 == "" {
		t.Fatal("managed daemon serving without a version header")
	}

	// Phase 1: break publishing. The daemon must degrade, not regress.
	corrupt.Store(true)
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("daemon never reported a degraded retrain")
		}
		code, hdr, _ := getFull(t, base+"/v1/stats")
		if code != http.StatusOK {
			t.Fatalf("stats during degraded retrain = %d — old model must keep serving", code)
		}
		if got := hdr.Get("X-DarkVec-Model-Version"); got != v1 {
			t.Fatalf("version advanced to %q while every publish was corrupt", got)
		}
		if hdr.Get("X-DarkVec-Model-Stale") == "true" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, _, body := getFull(t, base+"/healthz/ready")
	var ready map[string]any
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready["status"] != "degraded" || ready["stale"] != true {
		t.Fatalf("degraded ready body = %v", ready)
	}
	if e, _ := ready["last_error"].(string); !strings.Contains(e, "failed verification") {
		t.Fatalf("last_error = %q", ready["last_error"])
	}

	// The corrupt publishes must be quarantined, not serving.
	matches, err := filepath.Glob(filepath.Join(storeDir, "*.corrupt"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no quarantined artifacts after corrupt publishes: %v %v", matches, err)
	}

	// Phase 2: clear the fault. A retrain must succeed, bump the version
	// and drop the degraded markers.
	corrupt.Store(false)
	for {
		if time.Now().After(deadline) {
			t.Fatal("daemon never recovered after the fault cleared")
		}
		code, hdr, _ := getFull(t, base+"/v1/stats")
		if code != http.StatusOK {
			t.Fatalf("stats during recovery = %d", code)
		}
		got := hdr.Get("X-DarkVec-Model-Version")
		if got != v1 && hdr.Get("X-DarkVec-Model-Stale") == "" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, _, body = getFull(t, base+"/healthz/ready")
	ready = nil
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready["status"] != "ready" {
		t.Fatalf("recovered ready body = %v", ready)
	}
}

// TestRetrainBreakerGivesUp: persistent retrain failure trips the circuit
// breaker after -retrainfail consecutive failures; later cycles refuse to
// churn (ErrGiveUp) while the last-good model keeps serving.
func TestRetrainBreakerGivesUp(t *testing.T) {
	dir := t.TempDir()
	tracePath, _ := writeTestTrace(t, dir)

	o := baseOpts(tracePath)
	o.store = filepath.Join(dir, "store")
	o.retrain = 10 * time.Millisecond
	o.retrainFail = 2
	o.retrainSleep = fastSleep
	o.retrainBackoff = robust.Backoff{Base: time.Millisecond, Max: time.Millisecond}
	o.trainWrap = func(w io.Writer) io.Writer {
		return faultio.CorruptWriter(w, 64, 0x80) // every publish corrupt
	}
	outcomes := make(chan error, 16)
	o.onRetrain = func(err error) {
		select {
		case outcomes <- err:
		default:
		}
	}
	base, cancel, runErr := startDaemon(t, o)
	defer stopDaemon(t, cancel, runErr)

	for i := 0; i < 2; i++ {
		select {
		case err := <-outcomes:
			if !errors.Is(err, robust.ErrGiveUp) {
				t.Fatalf("retrain outcome %d = %v, want ErrGiveUp", i, err)
			}
		case <-time.After(2 * time.Minute):
			t.Fatal("breaker never gave up")
		}
	}
	// Given up, but not down: the last-good model still serves.
	code, hdr, _ := getFull(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats after give-up = %d", code)
	}
	if hdr.Get("X-DarkVec-Model-Stale") != "true" {
		t.Fatal("given-up daemon not marked stale")
	}
}

func TestValidateStoreFlags(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
	}{
		{"negative retrain", func(o *options) { o.retrain = -time.Second }},
		{"retrain without store", func(o *options) { o.retrain = time.Minute }},
		{"negative keep", func(o *options) { o.store = "s"; o.keep = -1 }},
		{"negative retrainfail", func(o *options) { o.retrainFail = -1 }},
	}
	for _, tc := range cases {
		o := baseOpts("trace.csv")
		tc.mutate(&o)
		if err := o.validate(); err == nil {
			t.Errorf("%s: validate() accepted %+v", tc.name, o)
		}
	}
	good := baseOpts("trace.csv")
	good.store = "s"
	good.retrain = time.Hour
	if err := good.validate(); err != nil {
		t.Fatalf("valid store options rejected: %v", err)
	}
}
