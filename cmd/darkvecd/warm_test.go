package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/darkvec/darkvec/internal/apiserver"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/robust"
	"github.com/darkvec/darkvec/internal/trace"
	"github.com/darkvec/darkvec/internal/w2v"
)

// warmOpts is baseOpts plus a store and a fast warm retrain loop.
func warmOpts(t *testing.T, dir, tracePath string) options {
	t.Helper()
	o := baseOpts(tracePath)
	o.store = filepath.Join(dir, "store")
	o.retrain = 20 * time.Millisecond
	o.warm = true
	o.epochs = 2
	o.retrainFail = 100000
	o.retrainSleep = fastSleep
	o.retrainBackoff = robust.Backoff{Base: time.Millisecond, Max: time.Millisecond}
	return o
}

// pollModel fetches /v1/model until pred is satisfied or the deadline
// passes, returning the last response.
func pollModel(t *testing.T, base string, pred func(apiserver.ModelResponse) bool) apiserver.ModelResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	var mr apiserver.ModelResponse
	for {
		mr = apiserver.ModelResponse{}
		if code := fetchJSON(t, base+"/v1/model", &mr); code == http.StatusOK && pred(mr) {
			return mr
		}
		if time.Now().After(deadline) {
			t.Fatalf("/v1/model never reached the expected state; last: %+v", mr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWarmRetrainIdenticalWindow is the end-to-end determinism pin: a
// static daemon retrains on the same -in file every cycle, so a warm
// retrain sees a zero-token delta and must run zero epochs — and /v1/model
// must say so.
func TestWarmRetrainIdenticalWindow(t *testing.T) {
	dir := t.TempDir()
	tracePath, _ := writeTestTrace(t, dir)
	o := warmOpts(t, dir, tracePath)
	base, cancel, runErr := startDaemon(t, o)
	defer stopDaemon(t, cancel, runErr)

	mr := pollModel(t, base, func(mr apiserver.ModelResponse) bool {
		return mr.Retrain != nil && mr.Retrain.Mode == "warm"
	})
	if mr.Retrain.Epochs != 0 {
		t.Errorf("identical window warm retrain ran %d epochs, want 0", mr.Retrain.Epochs)
	}
	if mr.Retrain.WarmFallback != "" {
		t.Errorf("unexpected warm fallback: %q", mr.Retrain.WarmFallback)
	}
	if mr.Retrain.DurationSecs < 0 {
		t.Errorf("negative retrain duration %v", mr.Retrain.DurationSecs)
	}
}

// TestWarmFallbackToCold: a corrupted warm seed must not fail the cycle —
// the retrain retries cold, serves the result, reports the fallback on
// /v1/model and composes the reason into the drift decision log.
func TestWarmFallbackToCold(t *testing.T) {
	dir := t.TempDir()
	tracePath, _ := writeTestTrace(t, dir)
	o := warmOpts(t, dir, tracePath)
	o.driftChurn = 1.0 // arm the gate (a churn of 1.0 is unreachable) so decisions are logged
	o.warmSeedHook = func(ws *w2v.WarmSeed) {
		// A truncated input matrix: the shape check must catch it.
		bad := *ws.Prev
		bad.Syn0 = bad.Syn0[:len(bad.Syn0)-1]
		ws.Prev = &bad
	}
	outcomes := make(chan error, 16)
	o.onRetrain = func(err error) {
		select {
		case outcomes <- err:
		default:
		}
	}
	base, cancel, runErr := startDaemon(t, o)
	defer stopDaemon(t, cancel, runErr)

	select {
	case err := <-outcomes:
		if err != nil {
			t.Fatalf("cycle with corrupt warm seed failed: %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("no retrain outcome")
	}
	mr := pollModel(t, base, func(mr apiserver.ModelResponse) bool {
		return mr.Retrain != nil && mr.Retrain.WarmFallback != ""
	})
	if mr.Retrain.Mode != "cold" {
		t.Errorf("fallback cycle mode = %q, want cold", mr.Retrain.Mode)
	}
	if !strings.Contains(mr.Retrain.WarmFallback, "warm seed unusable") {
		t.Errorf("warm_fallback = %q, want the ErrWarmSeed text", mr.Retrain.WarmFallback)
	}
	// The decision log must carry the fallback annotation on an accepted
	// decision (the gate passed; only the seeding path degraded).
	deadline := time.Now().Add(time.Minute)
	for {
		_, _, body := getFull(t, base+"/v1/drift")
		if strings.Contains(string(body), "warm_fallback:") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("decision log never recorded the warm fallback: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// lastDayTop returns active senders of the trace's last day, busiest first.
func lastDayTop(tr *trace.Trace) []netutil.IPv4 {
	active := tr.ActiveSenders(10)
	counts := map[netutil.IPv4]int{}
	for _, e := range tr.LastDays(1).Events {
		if active[e.Src] {
			counts[e.Src]++
		}
	}
	out := make([]netutil.IPv4, 0, len(counts))
	for ip := range counts {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// TestWarmRetiresVanishedSender: when a sender disappears from the window,
// the warm retrain must retire its vector — /v1/similar returns 404 for
// it, and it never appears among any surviving sender's neighbours.
func TestWarmRetiresVanishedSender(t *testing.T) {
	dir := t.TempDir()
	tracePath, tr := writeTestTrace(t, dir)
	top := lastDayTop(tr)
	if len(top) < 2 {
		t.Skip("trace too small for a retirement scenario")
	}
	victim, witness := top[0], top[1]

	o := warmOpts(t, dir, tracePath)
	base, cancel, runErr := startDaemon(t, o)
	defer stopDaemon(t, cancel, runErr)

	// The victim serves before the window shifts.
	deadline := time.Now().Add(time.Minute)
	for {
		code, _, _ := getFull(t, base+"/v1/similar?ip="+victim.String())
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim %s never served (last status %d)", victim, code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The window shifts: every packet of the victim vanishes. Atomic
	// rename so a concurrent retrain reads the old file or the new one,
	// never a torn one.
	keep := map[netutil.IPv4]bool{}
	for _, ip := range tr.Senders() {
		keep[ip] = ip != victim
	}
	tmp := tracePath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.FilterSenders(keep).WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, tracePath); err != nil {
		t.Fatal(err)
	}

	deadline = time.Now().Add(2 * time.Minute)
	for {
		code, _, _ := getFull(t, base+"/v1/similar?ip="+victim.String())
		if code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("vanished sender %s still serving (status %d)", victim, code)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mr := pollModel(t, base, func(mr apiserver.ModelResponse) bool { return mr.Retrain != nil })
	if mr.Retrain.Mode != "warm" {
		t.Errorf("post-shift retrain mode = %q, want warm", mr.Retrain.Mode)
	}
	// No stale neighbours: the witness's full neighbour list must not
	// contain the retired sender.
	var sim apiserver.SimilarResponse
	if code := fetchJSON(t, base+fmt.Sprintf("/v1/similar?ip=%s&k=%d", witness, len(top)+10), &sim); code != http.StatusOK {
		t.Fatalf("witness similar = %d", code)
	}
	for _, n := range sim.Neighbors {
		if n.IP == victim.String() {
			t.Fatalf("retired sender %s surfaced as a neighbour of %s", victim, witness)
		}
	}
}

// TestWarmCrashMidRetrainChaos is the acceptance chaos drill: a daemon
// dies mid-warm-retrain (abrupt cancel, plus a torn artifact the publish
// would have left), reboots from the newest intact generation, keeps
// answering every request, and its next warm cycle succeeds.
func TestWarmCrashMidRetrainChaos(t *testing.T) {
	dir := t.TempDir()
	tracePath, _ := writeTestTrace(t, dir)
	o := warmOpts(t, dir, tracePath)

	// Phase A: reach a steady warm cadence, then die mid-warm-train. The
	// seed hook fires at the start of every warm cycle — the third one
	// pulls the plug while training is in flight.
	ctxA, cancelA := context.WithCancel(context.Background())
	var warmCycles atomic.Int64
	o.warmSeedHook = func(*w2v.WarmSeed) {
		if warmCycles.Add(1) == 3 {
			cancelA()
		}
	}
	readyA := make(chan string, 1)
	o.onReady = func(addr string) { readyA <- addr }
	runErrA := make(chan error, 1)
	go func() { runErrA <- run(ctxA, o) }()
	select {
	case <-readyA:
	case err := <-runErrA:
		t.Fatalf("daemon A exited before ready: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon A never ready")
	}
	select {
	case err := <-runErrA:
		if err != nil {
			t.Fatalf("daemon A crash-exit: %v", err)
		}
	case <-time.After(2 * time.Minute):
		cancelA()
		t.Fatal("daemon A never exited after mid-retrain cancel")
	}

	// The kill -9 residue: a newer artifact torn mid-publish.
	matches, err := filepath.Glob(filepath.Join(o.store, "v*.model"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no published generations after phase A: %v %v", matches, err)
	}
	sort.Strings(matches)
	newest := filepath.Base(matches[len(matches)-1])
	var n int
	if _, err := fmt.Sscanf(newest, "v%06d.model", &n); err != nil {
		t.Fatalf("unexpected artifact name %q: %v", newest, err)
	}
	torn := filepath.Join(o.store, fmt.Sprintf("v%06d.model", n+1))
	if err := os.WriteFile(torn, []byte("torn mid-publish by kill -9"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase B: reboot on the same store. Must boot from the newest intact
	// generation, quarantine the torn one, and answer every request while
	// the next warm cycle runs.
	o2 := warmOpts(t, dir, tracePath)
	var booted atomic.Bool
	o2.logf = func(format string, args ...any) {
		if strings.Contains(format, "booted from store") {
			booted.Store(true)
		}
	}
	base, cancel, runErr := startDaemon(t, o2)
	defer stopDaemon(t, cancel, runErr)
	if !booted.Load() {
		t.Error("daemon B retrained at boot instead of serving the newest intact generation")
	}

	// Zero dropped requests: hammer the API during the warm cycle.
	hammerStop := make(chan struct{})
	hammerBad := make(chan string, 1)
	go func() {
		for {
			select {
			case <-hammerStop:
				return
			default:
			}
			resp, err := http.Get(base + "/v1/stats")
			if err != nil {
				select {
				case hammerBad <- err.Error():
				default:
				}
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				select {
				case hammerBad <- fmt.Sprintf("status %d", resp.StatusCode):
				default:
				}
				return
			}
		}
	}()

	mr := pollModel(t, base, func(mr apiserver.ModelResponse) bool {
		return mr.Retrain != nil && mr.Retrain.Mode == "warm" && mr.Retrain.WarmFallback == ""
	})
	if mr.Retrain.Mode != "warm" {
		t.Fatalf("post-crash retrain mode = %q", mr.Retrain.Mode)
	}
	close(hammerStop)
	select {
	case bad := <-hammerBad:
		t.Fatalf("request dropped during post-crash warm cycle: %s", bad)
	default:
	}
	if _, err := os.Stat(torn + ".corrupt"); err != nil {
		t.Errorf("torn artifact not quarantined: %v", err)
	}
}
