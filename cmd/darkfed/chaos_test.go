package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/darkvec/darkvec/internal/apiserver"
	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/corpus"
	"github.com/darkvec/darkvec/internal/darksim"
	"github.com/darkvec/darkvec/internal/federation"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/trace"
)

// vantageProc is one vantage daemon as a controllable process stand-in: a
// real trained model behind the real apiserver and intern-export handlers,
// on a real TCP port that survives kill/restart cycles. kill() is the
// kill -9 shape — listener and connections die instantly, no draining —
// and start() after a kill simulates the reboot: fresh interner (ids
// re-minted), fresh epoch, next generation.
type vantageProc struct {
	t    *testing.T
	name string
	tr   *trace.Trace
	addr string // pinned after first start; restarts rebind it
	gen  int
	srv  *http.Server
}

func (p *vantageProc) start() {
	p.t.Helper()
	p.gen++
	handler := buildVantageHandler(p.t, p.name, p.tr, fmt.Sprintf("v%06d", p.gen))
	addr := p.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	// A freshly killed listener can need a beat before the port rebinds.
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			p.t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	p.addr = ln.Addr().String()
	p.srv = &http.Server{Handler: handler}
	go p.srv.Serve(ln)
}

func (p *vantageProc) kill() { p.srv.Close() }

// buildVantageHandler trains a real (tiny) model on the vantage's view and
// assembles the daemon surface the aggregator consumes: /healthz/ready,
// /v1/intern, and the model API.
func buildVantageHandler(t *testing.T, name string, tr *trace.Trace, gen string) http.Handler {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.W2V.Dim = 8
	cfg.W2V.Window = 4
	cfg.W2V.Epochs = 1
	cfg.MinPackets = 1
	interner := corpus.NewInterner()
	emb, err := core.TrainEmbeddingOpts(tr, cfg, core.TrainOpts{Interner: interner})
	if err != nil {
		t.Fatalf("train %s: %v", name, err)
	}
	space, _ := emb.EvalSpace(tr, nil)
	gt := labels.Build(tr, nil)
	api := apiserver.New(apiserver.Config{
		Space: space, GT: gt, Trace: tr, Seed: 1, ModelVersion: gen,
		Logf: func(string, ...any) {},
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz/ready", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	mux.Handle("GET /v1/intern", federation.NewInternHandler(federation.InternSource{
		Vantage: name, Epoch: federation.NewEpoch(), Table: interner.Table(),
		Generation: func() string { return gen },
	}))
	mux.Handle("/", api)
	return mux
}

// carve3 splits the simulated /24 into three /26 vantage blocks (the
// fourth quarter is unmonitored space).
func carve3() []darksim.Vantage {
	return []darksim.Vantage{
		{Name: "north", Block: netutil.MustParseSubnet("198.18.0.0/26")},
		{Name: "south", Block: netutil.MustParseSubnet("198.18.0.64/26")},
		{Name: "west", Block: netutil.MustParseSubnet("198.18.0.128/26")},
	}
}

// sharedSender picks the sender with the highest minimum packet count
// across all views — guaranteed present in every vantage's model.
func sharedSender(t *testing.T, views map[string]*trace.Trace) string {
	t.Helper()
	minCount := map[netutil.IPv4]int{}
	first := true
	for _, tr := range views {
		counts := tr.SenderCounts()
		if first {
			for ip, n := range counts {
				minCount[ip] = n
			}
			first = false
			continue
		}
		for ip := range minCount {
			if n, ok := counts[ip]; ok {
				minCount[ip] = min(minCount[ip], n)
			} else {
				delete(minCount, ip)
			}
		}
	}
	var best netutil.IPv4
	bestN := 0
	for ip, n := range minCount {
		if n > bestN {
			best, bestN = ip, n
		}
	}
	if bestN == 0 {
		t.Fatal("no sender shared across all vantages")
	}
	return best.String()
}

// waitUntil polls cond every 25ms until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestChaosKillVantageMidStorm is the federation chaos drill: three vantage
// daemons behind one darkfed, a classify storm running throughout, one
// vantage killed (kill -9 shape) mid-storm. Required outcomes: ZERO dropped
// aggregator requests — every storm request gets a well-formed 200 —
// /healthz/ready degrades with the dead vantage named in sorted
// degraded_reasons, and the rejoining vantage (same port, re-minted id
// space, next generation) is re-admitted to full three-vantage answers
// without an aggregator restart.
func TestChaosKillVantageMidStorm(t *testing.T) {
	out := darksim.Generate(darksim.Config{Seed: 7, Days: 2, Scale: 0.01, Rate: 0.1})
	views := darksim.SplitVantages(out.Trace, carve3())
	ip := sharedSender(t, views)

	procs := map[string]*vantageProc{}
	var cfgs []federation.VantageConfig
	for name, view := range views {
		p := &vantageProc{t: t, name: name, tr: view}
		p.start()
		defer p.kill()
		procs[name] = p
		cfgs = append(cfgs, federation.VantageConfig{Name: name, URL: "http://" + p.addr})
	}

	o := options{
		listen:   "127.0.0.1:0",
		vantages: cfgs,
		poll:     50 * time.Millisecond,
		timeout:  2 * time.Second,
		drain:    5 * time.Second,
		logf:     func(string, ...any) {},
	}
	listenCh := make(chan string, 1)
	o.onListen = func(addr string) { listenCh <- addr }
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, o) }()
	var base string
	select {
	case addr := <-listenCh:
		base = "http://" + addr
	case err := <-runErr:
		t.Fatalf("darkfed exited: %v", err)
	}

	classifyContributors := func() ([]string, int) {
		resp, err := http.Get(base + "/v1/federated/classify?ip=" + ip)
		if err != nil {
			return nil, 0
		}
		defer resp.Body.Close()
		var body federation.ClassifyResponse
		_ = json.NewDecoder(resp.Body).Decode(&body)
		var names []string
		for _, v := range body.Vantages {
			names = append(names, v.Vantage)
		}
		return names, resp.StatusCode
	}
	readyStatus := func() (string, []string) {
		resp, err := http.Get(base + "/healthz/ready")
		if err != nil {
			return "", nil
		}
		defer resp.Body.Close()
		var body struct {
			Status          string   `json:"status"`
			DegradedReasons []string `json:"degraded_reasons"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return body.Status, body.DegradedReasons
	}

	// All three vantages admitted and contributing.
	waitUntil(t, 15*time.Second, func() bool {
		names, code := classifyContributors()
		return code == http.StatusOK && len(names) == 3
	}, "all three vantages contributing")

	// The storm: hammer federated classify for the whole drill. Every
	// request must come back as a well-formed 200 — degradation shows up in
	// the payload, never as a dropped or failed request.
	var stormStop atomic.Bool
	var total, dropped atomic.Int64
	var failMu sync.Mutex
	var failures []string
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stormStop.Load() {
				resp, err := client.Get(base + "/v1/federated/classify?ip=" + ip)
				total.Add(1)
				if err != nil {
					dropped.Add(1)
					failMu.Lock()
					failures = append(failures, err.Error())
					failMu.Unlock()
					continue
				}
				if resp.StatusCode != http.StatusOK {
					dropped.Add(1)
					var buf [512]byte
					n, _ := resp.Body.Read(buf[:])
					failMu.Lock()
					failures = append(failures, fmt.Sprintf("status %d: %s", resp.StatusCode, buf[:n]))
					failMu.Unlock()
				}
				_ = resp.Body.Close()
			}
		}()
	}

	// Let the storm run against the healthy fleet, then pull the plug.
	time.Sleep(300 * time.Millisecond)
	procs["south"].kill()

	// The aggregator notices, degrades, and names the dead vantage.
	waitUntil(t, 15*time.Second, func() bool {
		status, reasons := readyStatus()
		if status != "degraded" || len(reasons) != 1 {
			return false
		}
		return strings.HasPrefix(reasons[0], "vantage:south")
	}, "degraded_reasons naming vantage:south")

	// Survivor answers keep flowing mid-outage.
	waitUntil(t, 15*time.Second, func() bool {
		names, code := classifyContributors()
		return code == http.StatusOK && len(names) == 2
	}, "two-vantage answers during the outage")

	// Rejoin: same port, re-minted ids, next generation. Re-admission must
	// restore full answers with no aggregator restart.
	procs["south"].start()
	waitUntil(t, 30*time.Second, func() bool {
		status, reasons := readyStatus()
		if status != "ready" || len(reasons) != 0 {
			return false
		}
		names, code := classifyContributors()
		return code == http.StatusOK && len(names) == 3
	}, "full recovery after rejoin")

	// Wind down the storm and tally: zero dropped requests, ever.
	stormStop.Store(true)
	wg.Wait()
	if total.Load() < 50 {
		t.Fatalf("storm only made %d requests; drill too short to mean anything", total.Load())
	}
	if dropped.Load() != 0 {
		t.Fatalf("%d of %d storm requests dropped or failed during the kill/rejoin cycle: %q",
			dropped.Load(), total.Load(), failures)
	}
	t.Logf("storm: %d requests, 0 dropped", total.Load())

	// The rejoined vantage serves its new generation through the aggregator.
	resp, err := http.Get(base + "/v1/federated/vantages")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var inventory []struct {
		Vantage    string `json:"vantage"`
		Status     string `json:"status"`
		Generation string `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&inventory); err != nil {
		t.Fatal(err)
	}
	for _, v := range inventory {
		wantGen := "v000001"
		if v.Vantage == "south" {
			wantGen = "v000002" // the reboot's generation
		}
		if v.Status != "ready" || v.Generation != wantGen {
			t.Fatalf("inventory entry %+v, want ready/%s", v, wantGen)
		}
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("darkfed exit: %v", err)
	}
}
