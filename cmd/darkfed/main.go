// Command darkfed federates a fleet of darkvecd vantage daemons behind one
// degradation-aware endpoint. Each vantage point — one darknet telescope —
// runs its own darkvecd with its own window, interner, retrain loop and
// model store; darkfed polls them over their existing HTTP API, mirrors
// each one's sender id space locally, and answers cross-vantage questions.
//
// Usage:
//
//	darkfed -listen 127.0.0.1:8090 \
//	    -vantage north=http://127.0.0.1:8081 \
//	    -vantage south=http://127.0.0.1:8082
//
// Robustness model: every vantage is an isolated failure domain. A vantage
// crashing, hanging past -timeout, or refusing connections degrades the
// federated answer — it never fails it while any peer still serves. Each
// vantage client runs behind backed-off retries and a circuit breaker, so a
// dead daemon costs one probe per poll interval, not a hammering. A vantage
// returning from a kill -9 is re-admitted only after its model generation
// and intern table are re-synced (a restart re-mints the id space; the
// export's epoch detects it). /healthz/ready composes per-vantage state
// into deterministically ordered (cause-name sorted) degraded_reasons.
//
// Endpoints:
//
//	GET /healthz/live            — process is up
//	GET /healthz/ready           — ready | degraded (+ sorted degraded_reasons); 503 when no vantage is admitted
//	GET /v1/federated/classify?ip=1.2.3.4&k=7
//	GET /v1/federated/senders?ip=1.2.3.4
//	GET /v1/federated/vantages   — per-vantage admission state
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/darkvec/darkvec/internal/apiserver"
	"github.com/darkvec/darkvec/internal/federation"
)

// vantageFlags collects repeatable -vantage name=url definitions.
type vantageFlags []federation.VantageConfig

func (v *vantageFlags) String() string {
	var parts []string
	for _, vc := range *v {
		parts = append(parts, vc.Name+"="+vc.URL)
	}
	return strings.Join(parts, ",")
}

func (v *vantageFlags) Set(s string) error {
	name, url, ok := strings.Cut(s, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", s)
	}
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	*v = append(*v, federation.VantageConfig{Name: name, URL: url})
	return nil
}

// options carries every knob of an aggregator run; main fills it from
// flags, tests construct it directly.
type options struct {
	listen      string
	vantages    []federation.VantageConfig
	poll        time.Duration
	timeout     time.Duration
	k           int
	reqTimeout  time.Duration
	maxInFlight int
	drain       time.Duration

	logf     func(format string, args ...any) // nil: stdout
	onListen func(addr string)                // test hook: listener bound
}

func main() {
	var o options
	var vf vantageFlags
	flag.StringVar(&o.listen, "listen", "127.0.0.1:8090", "HTTP listen address")
	flag.Var(&vf, "vantage", "vantage daemon as name=url (repeatable)")
	flag.DurationVar(&o.poll, "poll", federation.DefaultPollInterval, "vantage health/sync poll interval")
	flag.DurationVar(&o.timeout, "timeout", federation.DefaultQueryTimeout, "per-vantage request timeout")
	flag.IntVar(&o.k, "k", 0, "default k forwarded to vantage classifiers (0 = vantage default)")
	flag.DurationVar(&o.reqTimeout, "reqtimeout", apiserver.DefaultRequestTimeout, "per-request timeout on the aggregator's own API (0 = none)")
	flag.IntVar(&o.maxInFlight, "maxinflight", apiserver.DefaultMaxInFlight, "max concurrent requests before shedding (0 = unlimited)")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful shutdown drain timeout")
	flag.Parse()
	o.vantages = vf
	if len(o.vantages) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "darkfed:", err)
		os.Exit(1)
	}
}

func (o *options) validate() error {
	if len(o.vantages) == 0 {
		return errors.New("no -vantage configured")
	}
	if o.poll < 0 || o.timeout < 0 {
		return errors.New("-poll and -timeout must be >= 0")
	}
	if _, _, err := net.SplitHostPort(o.listen); err != nil {
		return fmt.Errorf("invalid -listen %q: %v", o.listen, err)
	}
	return nil
}

func run(ctx context.Context, o options) error {
	if o.logf == nil {
		o.logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := o.validate(); err != nil {
		return err
	}
	agg, err := federation.NewAggregator(federation.Config{
		Vantages:       o.vantages,
		Poll:           o.poll,
		Timeout:        o.timeout,
		K:              o.k,
		RequestTimeout: o.reqTimeout,
		MaxInFlight:    o.maxInFlight,
		Logf:           o.logf,
	})
	if err != nil {
		return err
	}

	// Bind before the first poll completes: the aggregator is useful the
	// moment it is up — /healthz/live answers immediately, federated
	// queries shed cleanly with 503 until a vantage is admitted.
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           agg,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      o.reqTimeout + 5*time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	o.logf("federating %d vantages on http://%s", len(o.vantages), ln.Addr())
	if o.onListen != nil {
		o.onListen(ln.Addr().String())
	}

	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		agg.Run(ctx)
	}()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		o.logf("shutting down (draining up to %s)...", o.drain)
		sctx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		<-serveErr // http.ErrServerClosed
		<-pollDone
		return nil
	}
}
