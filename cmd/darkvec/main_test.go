package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/darkvec/darkvec/internal/darksim"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/w2v"
)

// writeDataset materialises a small trace + feeds directory on disk.
func writeDataset(t *testing.T) (tracePath, feedsDir string) {
	t.Helper()
	out := darksim.Generate(darksim.Config{Seed: 6, Days: 4, Scale: 0.01, Rate: 0.05})
	dir := t.TempDir()
	tracePath = filepath.Join(dir, "trace.csv")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	feedsDir = filepath.Join(dir, "feeds")
	if err := os.MkdirAll(feedsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for class, ips := range out.Feeds {
		ff, err := os.Create(filepath.Join(feedsDir, class+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if err := labels.WriteFeed(ff, ips); err != nil {
			t.Fatal(err)
		}
		ff.Close()
	}
	return tracePath, feedsDir
}

func TestRunBothModes(t *testing.T) {
	tracePath, feedsDir := writeDataset(t)
	modelPath := filepath.Join(t.TempDir(), "model.bin")
	err := run(tracePath, feedsDir, "both", "domain", "",
		16, 8, 2, 7, 3, 1, modelPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The model file must be loadable.
	f, err := os.Open(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := w2v.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Vocab.Size() == 0 || m.Dim() != 16 {
		t.Fatalf("model: vocab %d, dim %d", m.Vocab.Size(), m.Dim())
	}
}

func TestRunClassifyOnlyWithoutFeeds(t *testing.T) {
	tracePath, _ := writeDataset(t)
	// Without feeds, the Mirai fingerprint still provides one GT class.
	if err := run(tracePath, "", "classify", "auto", "", 16, 8, 1, 7, 3, 1, "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/missing.csv", "", "both", "domain", "", 16, 8, 1, 7, 3, 1, "", 1); err == nil {
		t.Fatal("missing trace must fail")
	}
	tracePath, _ := writeDataset(t)
	if err := run(tracePath, "/missing-feeds", "both", "domain", "", 16, 8, 1, 7, 3, 1, "", 1); err == nil {
		t.Fatal("missing feeds dir must fail")
	}
	if err := run(tracePath, "", "both", "bogus-services", "", 16, 8, 1, 7, 3, 1, "", 1); err == nil {
		t.Fatal("bad service kind must fail")
	}
}

func TestLoadFeedsSkipsNonTxt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "censys.txt"), []byte("1.2.3.4\n# comment\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	feeds, err := loadFeeds(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != 1 || len(feeds["censys"]) != 1 {
		t.Fatalf("feeds = %v", feeds)
	}
}

func TestRunWithCustomServiceFile(t *testing.T) {
	tracePath, _ := writeDataset(t)
	svcPath := filepath.Join(t.TempDir(), "plant.json")
	doc := `{"telnetish": ["23/tcp", "2323/tcp"], "adb": ["5555/tcp"]}`
	if err := os.WriteFile(svcPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(tracePath, "", "classify", "domain", svcPath, 16, 8, 1, 7, 3, 1, "", 1); err != nil {
		t.Fatal(err)
	}
	// Malformed map must fail.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"x": ["nope"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(tracePath, "", "classify", "domain", bad, 16, 8, 1, 7, 3, 1, "", 1); err == nil {
		t.Fatal("bad service file must fail")
	}
}
