package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/darkvec/darkvec/internal/darksim"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/w2v"
)

// baseOpts is a fast, valid configuration for tests.
func baseOpts(in, feeds string) options {
	return options{
		in: in, feedsDir: feeds, mode: "both", servKind: "domain",
		dim: 16, window: 8, epochs: 2, k: 7, kPrime: 3, seed: 1, evalDays: 1,
	}
}

// writeDataset materialises a small trace + feeds directory on disk.
func writeDataset(t *testing.T) (tracePath, feedsDir string) {
	t.Helper()
	out := darksim.Generate(darksim.Config{Seed: 6, Days: 4, Scale: 0.01, Rate: 0.05})
	dir := t.TempDir()
	tracePath = filepath.Join(dir, "trace.csv")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	feedsDir = filepath.Join(dir, "feeds")
	if err := os.MkdirAll(feedsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for class, ips := range out.Feeds {
		ff, err := os.Create(filepath.Join(feedsDir, class+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if err := labels.WriteFeed(ff, ips); err != nil {
			t.Fatal(err)
		}
		ff.Close()
	}
	return tracePath, feedsDir
}

func TestRunBothModes(t *testing.T) {
	tracePath, feedsDir := writeDataset(t)
	modelPath := filepath.Join(t.TempDir(), "model.bin")
	o := baseOpts(tracePath, feedsDir)
	o.modelOut = modelPath
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	// The model file must be loadable.
	f, err := os.Open(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := w2v.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Vocab.Size() == 0 || m.Dim() != 16 {
		t.Fatalf("model: vocab %d, dim %d", m.Vocab.Size(), m.Dim())
	}
}

func TestRunClassifyOnlyWithoutFeeds(t *testing.T) {
	tracePath, _ := writeDataset(t)
	// Without feeds, the Mirai fingerprint still provides one GT class.
	o := baseOpts(tracePath, "")
	o.mode, o.servKind, o.epochs = "classify", "auto", 1
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, baseOpts("/missing.csv", "")); err == nil {
		t.Fatal("missing trace must fail")
	}
	tracePath, _ := writeDataset(t)
	if err := run(ctx, baseOpts(tracePath, "/missing-feeds")); err == nil {
		t.Fatal("missing feeds dir must fail")
	}
	o := baseOpts(tracePath, "")
	o.servKind = "bogus-services"
	if err := run(ctx, o); err == nil {
		t.Fatal("bad service kind must fail")
	}
	o = baseOpts(tracePath, "")
	o.resume = true
	if err := run(ctx, o); err == nil {
		t.Fatal("-resume without -checkpoint must fail")
	}
}

func TestLoadFeedsSkipsNonTxt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "censys.txt"), []byte("1.2.3.4\n# comment\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	feeds, err := loadFeeds(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != 1 || len(feeds["censys"]) != 1 {
		t.Fatalf("feeds = %v", feeds)
	}
}

func TestRunWithCustomServiceFile(t *testing.T) {
	ctx := context.Background()
	tracePath, _ := writeDataset(t)
	svcPath := filepath.Join(t.TempDir(), "plant.json")
	doc := `{"telnetish": ["23/tcp", "2323/tcp"], "adb": ["5555/tcp"]}`
	if err := os.WriteFile(svcPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOpts(tracePath, "")
	o.mode, o.servFile, o.epochs = "classify", svcPath, 1
	if err := run(ctx, o); err != nil {
		t.Fatal(err)
	}
	// Malformed map must fail.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"x": ["nope"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	o.servFile = bad
	if err := run(ctx, o); err == nil {
		t.Fatal("bad service file must fail")
	}
}

// TestRunTolerantIngest: garbage rows abort a strict run but are skipped
// under -maxerr.
func TestRunTolerantIngest(t *testing.T) {
	ctx := context.Background()
	tracePath, _ := writeDataset(t)
	clean, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(clean), "\n")
	mid := len(lines) / 2
	dirtyPath := filepath.Join(t.TempDir(), "dirty.csv")
	dirty := strings.Join(lines[:mid], "") + "garbage,row\n" + strings.Join(lines[mid:], "")
	if err := os.WriteFile(dirtyPath, []byte(dirty), 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOpts(dirtyPath, "")
	o.mode, o.epochs = "classify", 1
	if err := run(ctx, o); err == nil {
		t.Fatal("strict ingest of a dirty trace must fail")
	}
	o.maxErr = 5
	if err := run(ctx, o); err != nil {
		t.Fatalf("tolerant ingest failed: %v", err)
	}
}

// TestRunCheckpointConsumed: a completed run removes its checkpoint file.
func TestRunCheckpointConsumed(t *testing.T) {
	tracePath, _ := writeDataset(t)
	o := baseOpts(tracePath, "")
	o.mode, o.epochs = "classify", 1
	o.checkpoint = filepath.Join(t.TempDir(), "train.ck")
	o.resume = true // missing checkpoint: trains from scratch
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(o.checkpoint); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not consumed: %v", err)
	}
}

// TestVerifyCommand: -verify accepts an intact saved model, reports its
// shape and checksum status, and rejects the same file after a bit flip.
func TestVerifyCommand(t *testing.T) {
	tracePath, _ := writeDataset(t)
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	o := baseOpts(tracePath, "")
	o.mode = "classify"
	o.modelOut = modelPath
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}

	var report strings.Builder
	if err := runVerify(&report, modelPath); err != nil {
		t.Fatalf("verify of intact model = %v", err)
	}
	got := report.String()
	if !strings.Contains(got, "model") || !strings.Contains(got, "checksum OK") {
		t.Fatalf("verify report = %q", got)
	}

	b, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x20
	flipped := filepath.Join(dir, "flipped.bin")
	if err := os.WriteFile(flipped, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runVerify(&report, flipped); err == nil {
		t.Fatal("verify must reject a bit-flipped model")
	}

	if err := runVerify(&report, filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("verify must fail on a missing file")
	}
}
