// Command darkvec runs the DarkVec pipeline on a darknet trace: it trains
// the per-service Word2Vec embedding, then either classifies labeled
// senders (semi-supervised, Leave-One-Out), extracts coordinated clusters
// (unsupervised, k'-NN graph + Louvain), or both.
//
// Usage:
//
//	darkvec -in trace.csv -feeds feeds/ -mode classify
//	darkvec -in trace.csv -mode cluster
//	darkvec -in trace.csv -feeds feeds/ -mode both -model model.bin
//
// Feeds are per-class IP lists (<class>.txt, one address per line); the
// Mirai-like class is derived from the packet fingerprint automatically.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/darkvec/darkvec/internal/cluster"
	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/services"
	"github.com/darkvec/darkvec/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "input trace (.csv or .pcap)")
		feedsDir = flag.String("feeds", "", "directory of <class>.txt IP feeds")
		mode     = flag.String("mode", "both", "classify | cluster | both")
		servKind = flag.String("services", "domain", "service definition: single | auto | domain")
		servFile = flag.String("services-file", "", "JSON port→service map overriding -services")
		dim      = flag.Int("dim", 50, "embedding dimension V")
		window   = flag.Int("window", 25, "context window c")
		epochs   = flag.Int("epochs", 10, "training epochs")
		k        = flag.Int("k", 7, "k-NN classifier neighbours")
		kPrime   = flag.Int("kprime", 3, "clustering graph out-degree k'")
		seed     = flag.Uint64("seed", 1, "training seed")
		modelOut = flag.String("model", "", "optional path to save the trained model")
		evalDays = flag.Int("evaldays", 1, "evaluate on the final N days of the trace")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *feedsDir, *mode, *servKind, *servFile, *dim, *window, *epochs, *k, *kPrime, *seed, *modelOut, *evalDays); err != nil {
		fmt.Fprintln(os.Stderr, "darkvec:", err)
		os.Exit(1)
	}
}

func loadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".pcap") {
		tr, _, err := trace.ReadPCAP(f)
		return tr, err
	}
	return trace.ReadCSV(f)
}

func loadFeeds(dir string) (map[string][]netutil.IPv4, error) {
	feeds := map[string][]netutil.IPv4{}
	if dir == "" {
		return feeds, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".txt") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			return nil, err
		}
		ips, err := labels.ReadFeed(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ent.Name(), err)
		}
		feeds[strings.TrimSuffix(ent.Name(), ".txt")] = ips
	}
	return feeds, nil
}

func run(in, feedsDir, mode, servKind, servFile string, dim, window, epochs, k, kPrime int, seed uint64, modelOut string, evalDays int) error {
	tr, err := loadTrace(in)
	if err != nil {
		return err
	}
	feeds, err := loadFeeds(feedsDir)
	if err != nil {
		return err
	}
	gt := labels.Build(tr, feeds)
	fmt.Printf("trace: %d events, %d days; ground truth: %d labeled senders in %d classes\n",
		tr.Len(), tr.Days(), gt.Labeled(), len(gt.Classes()))

	cfg := core.DefaultConfig()
	cfg.Services = core.ServiceKind(servKind)
	if servFile != "" {
		f, err := os.Open(servFile)
		if err != nil {
			return err
		}
		custom, err := services.ParseCustom(strings.TrimSuffix(filepath.Base(servFile), ".json"), f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Custom = custom
	}
	cfg.K = k
	cfg.KPrime = kPrime
	cfg.W2V.Dim = dim
	cfg.W2V.Window = window
	cfg.W2V.Epochs = epochs
	cfg.W2V.Seed = seed

	emb, err := core.TrainEmbedding(tr, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("trained: vocab %d, %d skip-grams, %s\n",
		emb.Model.Vocab.Size(), emb.SkipGrams, emb.TrainTime.Round(1e6))

	if modelOut != "" {
		f, err := os.Create(modelOut)
		if err != nil {
			return err
		}
		if err := emb.Model.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved model to %s\n", modelOut)
	}

	eval := tr.LastDays(evalDays)
	space, cov := emb.EvalSpace(eval, nil)
	fmt.Printf("evaluation window: final %d day(s), %d senders in space, coverage %.1f%%\n",
		evalDays, space.Len(), cov*100)

	if mode == "classify" || mode == "both" {
		rep := core.Evaluate(space, gt, k)
		fmt.Printf("\n-- semi-supervised %d-NN (Leave-One-Out) --\n%s", k, rep)
	}
	if mode == "cluster" || mode == "both" {
		cl := core.Cluster(space, kPrime, seed)
		fmt.Printf("\n-- unsupervised clustering (k'=%d + Louvain) --\n", kPrime)
		fmt.Printf("clusters: %d, modularity: %.3f\n", cl.Clusters, cl.Modularity)
		sil := cluster.Silhouette(space, cl.Assign)
		lbl := map[string]string{}
		for _, w := range space.Words {
			if ip, perr := netutil.ParseIPv4(w); perr == nil {
				lbl[w] = gt.Class(ip)
			}
		}
		profiles := cluster.Inspect(tr, space.Words, cl.Assign, sil, lbl, labels.Unknown)
		for _, p := range profiles {
			if len(p.Senders) < 3 {
				continue
			}
			fmt.Printf("C%-3d %5d senders  %4d ports  sil %5.2f  %s\n",
				p.Cluster, len(p.Senders), p.Ports, p.AvgSil, p.Describe(labels.Unknown))
		}
	}
	return nil
}
