// Command darkvec runs the DarkVec pipeline on a darknet trace: it trains
// the per-service Word2Vec embedding, then either classifies labeled
// senders (semi-supervised, Leave-One-Out), extracts coordinated clusters
// (unsupervised, k'-NN graph + Louvain), or both.
//
// Usage:
//
//	darkvec -in trace.csv -feeds feeds/ -mode classify
//	darkvec -in trace.csv -mode cluster
//	darkvec -in trace.csv -feeds feeds/ -mode both -model model.bin
//
// Feeds are per-class IP lists (<class>.txt, one address per line); the
// Mirai-like class is derived from the packet fingerprint automatically.
//
// Dirty captures can be ingested with -maxerr N, which skips up to N
// malformed records and prints the ingest report. Long runs checkpoint
// after every epoch with -checkpoint; an interrupted run (Ctrl-C leaves a
// resumable checkpoint behind) continues with -resume, producing
// byte-identical results to an uninterrupted one.
//
// -verify FILE inspects a saved model or checkpoint without running the
// pipeline: it reports the artifact kind, vocabulary size, dimension and
// whether the embedded checksum holds, and exits non-zero on corruption.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"github.com/darkvec/darkvec/internal/cluster"
	"github.com/darkvec/darkvec/internal/core"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/services"
	"github.com/darkvec/darkvec/internal/trace"
	"github.com/darkvec/darkvec/internal/w2v"
)

// options carries every flag of a pipeline run.
type options struct {
	in         string
	feedsDir   string
	mode       string
	servKind   string
	servFile   string
	dim        int
	window     int
	epochs     int
	k          int
	kPrime     int
	seed       uint64
	modelOut   string
	evalDays   int
	maxErr     int64
	checkpoint string
	resume     bool
	verify     string
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "input trace (.csv or .pcap)")
	flag.StringVar(&o.feedsDir, "feeds", "", "directory of <class>.txt IP feeds")
	flag.StringVar(&o.mode, "mode", "both", "classify | cluster | both")
	flag.StringVar(&o.servKind, "services", "domain", "service definition: single | auto | domain")
	flag.StringVar(&o.servFile, "services-file", "", "JSON port→service map overriding -services")
	flag.IntVar(&o.dim, "dim", 50, "embedding dimension V")
	flag.IntVar(&o.window, "window", 25, "context window c")
	flag.IntVar(&o.epochs, "epochs", 10, "training epochs")
	flag.IntVar(&o.k, "k", 7, "k-NN classifier neighbours")
	flag.IntVar(&o.kPrime, "kprime", 3, "clustering graph out-degree k'")
	flag.Uint64Var(&o.seed, "seed", 1, "training seed")
	flag.StringVar(&o.modelOut, "model", "", "optional path to save the trained model")
	flag.IntVar(&o.evalDays, "evaldays", 1, "evaluate on the final N days of the trace")
	flag.Int64Var(&o.maxErr, "maxerr", 0, "tolerate up to N malformed input records (0 = strict)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file written after every training epoch")
	flag.BoolVar(&o.resume, "resume", false, "resume training from -checkpoint if it exists")
	flag.StringVar(&o.verify, "verify", "", "verify a saved model/checkpoint file and exit")
	flag.Parse()
	if o.verify != "" {
		if err := runVerify(os.Stdout, o.verify); err != nil {
			fmt.Fprintln(os.Stderr, "darkvec:", err)
			os.Exit(1)
		}
		return
	}
	if o.in == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "darkvec:", err)
		os.Exit(1)
	}
}

// runVerify checks a saved artifact end to end — magic, structure and the
// trailing checksum — and prints a one-artifact report. Operators run it
// before copying a model between hosts or after a suspicious crash.
func runVerify(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := w2v.Verify(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	integrity := "no checksum (legacy pre-footer file)"
	if info.Checksummed {
		integrity = "checksum OK"
	}
	switch info.Kind {
	case "checkpoint":
		fmt.Fprintf(w, "%s: checkpoint, %d words, dim %d, epoch %d, %s\n",
			path, info.Words, info.Dim, info.Epoch, integrity)
	default:
		fmt.Fprintf(w, "%s: model, %d words, dim %d, %s\n",
			path, info.Words, info.Dim, integrity)
	}
	return nil
}

func loadFeeds(dir string) (map[string][]netutil.IPv4, error) {
	feeds := map[string][]netutil.IPv4{}
	if dir == "" {
		return feeds, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".txt") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			return nil, err
		}
		ips, err := labels.ReadFeed(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ent.Name(), err)
		}
		feeds[strings.TrimSuffix(ent.Name(), ".txt")] = ips
	}
	return feeds, nil
}

func run(ctx context.Context, o options) error {
	if o.resume && o.checkpoint == "" {
		return errors.New("-resume requires -checkpoint")
	}
	if o.maxErr < 0 {
		return fmt.Errorf("invalid -maxerr %d: must be >= 0", o.maxErr)
	}
	tr, rep, err := trace.ReadFile(o.in, o.maxErr)
	if err != nil {
		return err
	}
	fmt.Println(rep.String())
	feeds, err := loadFeeds(o.feedsDir)
	if err != nil {
		return err
	}
	gt := labels.Build(tr, feeds)
	fmt.Printf("trace: %d events, %d days; ground truth: %d labeled senders in %d classes\n",
		tr.Len(), tr.Days(), gt.Labeled(), len(gt.Classes()))

	cfg := core.DefaultConfig()
	cfg.Services = core.ServiceKind(o.servKind)
	if o.servFile != "" {
		f, err := os.Open(o.servFile)
		if err != nil {
			return err
		}
		custom, err := services.ParseCustom(strings.TrimSuffix(filepath.Base(o.servFile), ".json"), f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Custom = custom
	}
	cfg.K = o.k
	cfg.KPrime = o.kPrime
	cfg.W2V.Dim = o.dim
	cfg.W2V.Window = o.window
	cfg.W2V.Epochs = o.epochs
	cfg.W2V.Seed = o.seed

	emb, err := core.TrainEmbeddingOpts(tr, cfg, core.TrainOpts{
		Context:        ctx,
		CheckpointPath: o.checkpoint,
		Resume:         o.resume,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) && o.checkpoint != "" {
			fmt.Printf("interrupted; resume with -resume -checkpoint %s\n", o.checkpoint)
		}
		return err
	}
	fmt.Printf("trained: vocab %d, %d skip-grams, %s\n",
		emb.Model.Vocab.Size(), emb.SkipGrams, emb.TrainTime.Round(1e6))

	if o.modelOut != "" {
		f, err := os.Create(o.modelOut)
		if err != nil {
			return err
		}
		if err := emb.Model.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved model to %s\n", o.modelOut)
	}

	eval := tr.LastDays(o.evalDays)
	space, cov := emb.EvalSpace(eval, nil)
	fmt.Printf("evaluation window: final %d day(s), %d senders in space, coverage %.1f%%\n",
		o.evalDays, space.Len(), cov*100)

	if o.mode == "classify" || o.mode == "both" {
		rep := core.Evaluate(space, gt, o.k)
		fmt.Printf("\n-- semi-supervised %d-NN (Leave-One-Out) --\n%s", o.k, rep)
	}
	if o.mode == "cluster" || o.mode == "both" {
		cl := core.Cluster(space, o.kPrime, o.seed)
		fmt.Printf("\n-- unsupervised clustering (k'=%d + Louvain) --\n", o.kPrime)
		fmt.Printf("clusters: %d, modularity: %.3f\n", cl.Clusters, cl.Modularity)
		sil, serr := cluster.Silhouette(space, cl.Assign)
		if serr != nil {
			return serr
		}
		lbl := map[string]string{}
		for _, w := range space.Words {
			if ip, perr := netutil.ParseIPv4(w); perr == nil {
				lbl[w] = gt.Class(ip)
			}
		}
		profiles := cluster.Inspect(tr, space.Words, cl.Assign, sil, lbl, labels.Unknown)
		for _, p := range profiles {
			if len(p.Senders) < 3 {
				continue
			}
			fmt.Printf("C%-3d %5d senders  %4d ports  sil %5.2f  %s\n",
				p.Cluster, len(p.Senders), p.Ports, p.AvgSil, p.Describe(labels.Unknown))
		}
	}
	return nil
}
