package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/darkvec/darkvec/internal/trace"
)

func TestRunWritesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "trace.csv")
	pcapPath := filepath.Join(dir, "trace.pcap")
	feedsDir := filepath.Join(dir, "feeds")
	if err := run(options{
		out: csvPath, pcapOut: pcapPath, feedsDir: feedsDir,
		days: 3, scale: 0.01, rate: 0.05, seed: 7,
	}); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 || tr.Days() != 3 {
		t.Fatalf("trace: %d events, %d days", tr.Len(), tr.Days())
	}

	pf, err := os.Open(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	ptr, skipped, err := trace.ReadPCAP(pf)
	if err != nil || skipped != 0 {
		t.Fatalf("pcap: %v, skipped %d", err, skipped)
	}
	if ptr.Len() != tr.Len() {
		t.Fatalf("pcap events %d != csv events %d", ptr.Len(), tr.Len())
	}

	feeds, err := os.ReadDir(feedsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) < 8 {
		t.Fatalf("feeds written: %d", len(feeds))
	}
}

func TestRunSkipsUnrequestedOutputs(t *testing.T) {
	if err := run(options{days: 2, scale: 0.005, rate: 0.05, seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadPath(t *testing.T) {
	o := options{out: "/nonexistent-dir/x.csv", days: 2, scale: 0.005, rate: 0.05, seed: 1}
	if err := run(o); err == nil {
		t.Fatal("unwritable path must fail")
	}
}

func TestRunAttackOverlay(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "trace.csv")
	base := options{out: csvPath, days: 2, scale: 0.005, rate: 0.05, seed: 1}
	if err := run(base); err != nil {
		t.Fatal(err)
	}
	clean := readTrace(t, csvPath)

	atk := base
	atk.attack, atk.attackers, atk.attackPPS, atk.attackDays = "sybil", 50, 12, 1
	if err := run(atk); err != nil {
		t.Fatal(err)
	}
	poisoned := readTrace(t, csvPath)
	if poisoned.Len() <= clean.Len() {
		t.Fatalf("attack overlay added no events: %d vs %d", poisoned.Len(), clean.Len())
	}
	// The overlay starts at the base trace's end, so it must extend the span.
	if poisoned.Days() <= clean.Days() {
		t.Fatalf("attack days %d, clean days %d", poisoned.Days(), clean.Days())
	}

	bad := base
	bad.attack = "teleport"
	if err := run(bad); err == nil {
		t.Fatal("unknown attack kind must fail")
	}
}

func readTrace(t *testing.T, path string) *trace.Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
