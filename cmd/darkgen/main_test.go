package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/darkvec/darkvec/internal/trace"
)

func TestRunWritesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "trace.csv")
	pcapPath := filepath.Join(dir, "trace.pcap")
	feedsDir := filepath.Join(dir, "feeds")
	if err := run(csvPath, pcapPath, feedsDir, 3, 0.01, 0.05, 7, "", 0); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 || tr.Days() != 3 {
		t.Fatalf("trace: %d events, %d days", tr.Len(), tr.Days())
	}

	pf, err := os.Open(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	ptr, skipped, err := trace.ReadPCAP(pf)
	if err != nil || skipped != 0 {
		t.Fatalf("pcap: %v, skipped %d", err, skipped)
	}
	if ptr.Len() != tr.Len() {
		t.Fatalf("pcap events %d != csv events %d", ptr.Len(), tr.Len())
	}

	feeds, err := os.ReadDir(feedsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) < 8 {
		t.Fatalf("feeds written: %d", len(feeds))
	}
}

func TestRunSkipsUnrequestedOutputs(t *testing.T) {
	if err := run("", "", "", 2, 0.005, 0.05, 1, "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadPath(t *testing.T) {
	if err := run("/nonexistent-dir/x.csv", "", "", 2, 0.005, 0.05, 1, "", 0); err == nil {
		t.Fatal("unwritable path must fail")
	}
}
