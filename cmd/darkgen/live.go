package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"

	"github.com/darkvec/darkvec/internal/trace"
)

// runLive streams a generated trace into a darkvecd -ingest listener over
// the CSV line protocol, pacing events by their timestamps: speed 1 replays
// in real time, speed 86400 compresses a day into a second, speed 0 is an
// unpaced firehose — the overload knob for chaos tests (a 10× oversubscribed
// feed is just -speed set past the consumer's capacity).
func runLive(addr string, tr *trace.Trace, speed float64, logf func(string, ...any)) error {
	network := "tcp"
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, addr = "unix", path
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	var (
		buf       []byte
		wallStart = time.Now()
		sent      int
	)
	for _, e := range tr.Events {
		if speed > 0 {
			due := wallStart.Add(time.Duration(float64(e.Ts-tr.Events[0].Ts) / speed * float64(time.Second)))
			if wait := time.Until(due); wait > 0 {
				// Flush before sleeping so the receiver sees every event
				// already due, not a buffer-sized batch afterwards.
				if err := bw.Flush(); err != nil {
					return fmt.Errorf("after %d events: %w", sent, err)
				}
				time.Sleep(wait)
			}
		}
		buf = e.AppendCSV(buf[:0])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("after %d events: %w", sent, err)
		}
		sent++
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("after %d events: %w", sent, err)
	}
	logf("streamed %d events to %s", sent, addr)
	return nil
}
