// Command darkgen synthesises a darknet dataset with the paper's population
// structure: a packet trace (CSV or pcap) plus the scanner-project IP feeds
// used as ground truth.
//
// Usage:
//
//	darkgen -out trace.csv -feeds feeds/ [-days 30] [-scale 0.05] [-rate 0.1] [-seed 1] [-pcap trace.pcap]
//
// With -live, the generated events are additionally streamed into a
// darkvecd -ingest listener over the CSV line protocol, paced by -speed
// (event-seconds per wall-second: 1 = real time, 86400 = a day per second,
// 0 = unpaced firehose) — the load generator for soak and chaos testing of
// the live ingestion path:
//
//	darkgen -out '' -days 1 -live 127.0.0.1:9000 -speed 3600
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/darkvec/darkvec/internal/darksim"
	"github.com/darkvec/darkvec/internal/labels"
)

func main() {
	var (
		out      = flag.String("out", "trace.csv", "CSV trace output path ('' to skip)")
		pcapOut  = flag.String("pcap", "", "optional pcap output path")
		feedsDir = flag.String("feeds", "", "directory for per-class IP feed files ('' to skip)")
		days     = flag.Int("days", 30, "trace length in days")
		scale    = flag.Float64("scale", 0.05, "population scale vs the paper's darknet")
		rate     = flag.Float64("rate", 0.10, "per-sender packet rate scale")
		seed     = flag.Uint64("seed", 1, "generator seed")
		live     = flag.String("live", "", "stream events to this darkvecd -ingest address (host:port or unix:/path)")
		speed    = flag.Float64("speed", 0, "live pacing in event-seconds per wall-second (0 = firehose)")
	)
	flag.Parse()
	if err := run(*out, *pcapOut, *feedsDir, *days, *scale, *rate, *seed, *live, *speed); err != nil {
		fmt.Fprintln(os.Stderr, "darkgen:", err)
		os.Exit(1)
	}
}

func run(out, pcapOut, feedsDir string, days int, scale, rate float64, seed uint64, live string, speed float64) error {
	res := darksim.Generate(darksim.Config{
		Seed: seed, Days: days, Scale: scale, Rate: rate,
	})
	fmt.Printf("generated %d events from %d sources over %d days\n",
		res.Trace.Len(), len(res.Trace.SenderCounts()), days)

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := res.Trace.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if pcapOut != "" {
		f, err := os.Create(pcapOut)
		if err != nil {
			return err
		}
		if err := res.Trace.WritePCAP(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", pcapOut)
	}
	if feedsDir != "" {
		if err := os.MkdirAll(feedsDir, 0o755); err != nil {
			return err
		}
		for class, ips := range res.Feeds {
			path := filepath.Join(feedsDir, class+".txt")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := labels.WriteFeed(f, ips); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d senders)\n", path, len(ips))
		}
	}
	if live != "" {
		if err := runLive(live, res.Trace, speed, func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}); err != nil {
			return err
		}
	}
	return nil
}
