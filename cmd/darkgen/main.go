// Command darkgen synthesises a darknet dataset with the paper's population
// structure: a packet trace (CSV or pcap) plus the scanner-project IP feeds
// used as ground truth.
//
// Usage:
//
//	darkgen -out trace.csv -feeds feeds/ [-days 30] [-scale 0.05] [-rate 0.1] [-seed 1] [-pcap trace.pcap]
//
// With -live, the generated events are additionally streamed into a
// darkvecd -ingest listener over the CSV line protocol, paced by -speed
// (event-seconds per wall-second: 1 = real time, 86400 = a day per second,
// 0 = unpaced firehose) — the load generator for soak and chaos testing of
// the live ingestion path:
//
//	darkgen -out '' -days 1 -live 127.0.0.1:9000 -speed 3600
//
// With -attack, an evasive scanner overlay (sybil | mimicry | jitter) is
// appended after the base trace — sized by -attackers/-attackpps/-attackdays
// — so the same invocation exercises the drift gate end to end:
//
//	darkgen -out '' -days 1 -attack sybil -attackers 200 -live 127.0.0.1:9000
//
// With -vantage (repeatable, name=cidr[@addr]), the darknet is viewed as
// several telescopes: events are tagged with the vantage whose block their
// destination falls in, and destinations no vantage monitors are dropped.
// Each vantage develops its own personality — the sub-block it watches sees
// a distinct slice of every scanner's sweep. A spec with @addr streams that
// vantage's view to its own darkvecd -ingest listener, one connection per
// vantage, which is the load generator for federation chaos drills:
//
//	darkgen -out '' -days 1 \
//	    -vantage north=198.18.0.0/26@127.0.0.1:9001 \
//	    -vantage south=198.18.0.64/26@127.0.0.1:9002
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/darkvec/darkvec/internal/darksim"
	"github.com/darkvec/darkvec/internal/labels"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/trace"
)

// vantageSpec is one -vantage definition: the telescope geometry plus an
// optional live streaming target for that vantage's view.
type vantageSpec struct {
	v    darksim.Vantage
	addr string // "" when this vantage only tags, never streams
}

// vantageSpecs collects repeatable -vantage name=cidr[@addr] flags.
type vantageSpecs []vantageSpec

func (s *vantageSpecs) String() string {
	var parts []string
	for _, spec := range *s {
		p := spec.v.Name + "=" + spec.v.Block.String()
		if spec.addr != "" {
			p += "@" + spec.addr
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, ",")
}

func (s *vantageSpecs) Set(arg string) error {
	name, rest, ok := strings.Cut(arg, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("want name=cidr[@addr], got %q", arg)
	}
	cidr, addr, _ := strings.Cut(rest, "@")
	block, err := netutil.ParseSubnet(cidr)
	if err != nil {
		return fmt.Errorf("vantage %s: %v", name, err)
	}
	for _, prev := range *s {
		if prev.v.Name == name {
			return fmt.Errorf("duplicate vantage %q", name)
		}
	}
	*s = append(*s, vantageSpec{v: darksim.Vantage{Name: name, Block: block}, addr: addr})
	return nil
}

func main() {
	var (
		out      = flag.String("out", "trace.csv", "CSV trace output path ('' to skip)")
		pcapOut  = flag.String("pcap", "", "optional pcap output path")
		feedsDir = flag.String("feeds", "", "directory for per-class IP feed files ('' to skip)")
		days     = flag.Int("days", 30, "trace length in days")
		scale    = flag.Float64("scale", 0.05, "population scale vs the paper's darknet")
		rate     = flag.Float64("rate", 0.10, "per-sender packet rate scale")
		seed     = flag.Uint64("seed", 1, "generator seed")
		live     = flag.String("live", "", "stream events to this darkvecd -ingest address (host:port or unix:/path)")
		speed    = flag.Float64("speed", 0, "live pacing in event-seconds per wall-second (0 = firehose)")

		vantages vantageSpecs

		attack    = flag.String("attack", "", "append an evasive overlay: sybil | mimicry | jitter")
		attackers = flag.Int("attackers", 200, "attacking source count")
		attackPPS = flag.Int("attackpps", 12, "packets per attacker per day")
		attackDay = flag.Int("attackdays", 1, "attack duration in days (starts where the base trace ends)")
		mimic     = flag.String("attackmimic", "", "mimicry: ground-truth class whose port mix to copy")
	)
	flag.Var(&vantages, "vantage", "vantage telescope as name=cidr[@addr] (repeatable; @addr streams that view live)")
	flag.Parse()
	if err := run(options{
		out: *out, pcapOut: *pcapOut, feedsDir: *feedsDir,
		days: *days, scale: *scale, rate: *rate, seed: *seed,
		live: *live, speed: *speed, vantages: vantages,
		attack: *attack, attackers: *attackers, attackPPS: *attackPPS,
		attackDays: *attackDay, mimic: *mimic,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "darkgen:", err)
		os.Exit(1)
	}
}

type options struct {
	out, pcapOut, feedsDir string
	days                   int
	scale, rate            float64
	seed                   uint64
	live                   string
	speed                  float64
	vantages               []vantageSpec

	attack     string
	attackers  int
	attackPPS  int
	attackDays int
	mimic      string
}

func run(o options) error {
	res := darksim.Generate(darksim.Config{
		Seed: o.seed, Days: o.days, Scale: o.scale, Rate: o.rate,
	})
	fmt.Printf("generated %d events from %d sources over %d days\n",
		res.Trace.Len(), len(res.Trace.SenderCounts()), o.days)

	tr := res.Trace
	if o.attack != "" {
		// The overlay starts where the base trace ends, so a live window's
		// age horizon never evicts it before a retrain sees it.
		end := res.Config.Start + int64(o.days)*86400
		atk, err := darksim.Attack(darksim.AttackConfig{
			Kind:             darksim.AttackKind(o.attack),
			Seed:             o.seed,
			Start:            end,
			Days:             o.attackDays,
			Senders:          o.attackers,
			PacketsPerSender: o.attackPPS,
			MimicClass:       o.mimic,
		})
		if err != nil {
			return err
		}
		tr = trace.Merge(tr, atk.Trace)
		fmt.Printf("appended %s attack: %d events from %d attackers\n",
			o.attack, atk.Trace.Len(), len(atk.Attackers))
	}

	if len(o.vantages) > 0 {
		blocks := make([]darksim.Vantage, len(o.vantages))
		for i, spec := range o.vantages {
			blocks[i] = spec.v
		}
		before := tr.Len()
		tr = darksim.TagVantages(tr, blocks)
		fmt.Printf("tagged %d of %d events across %d vantages (%d aimed at unmonitored space)\n",
			tr.Len(), before, len(blocks), before-tr.Len())
	}

	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	if o.pcapOut != "" {
		f, err := os.Create(o.pcapOut)
		if err != nil {
			return err
		}
		if err := tr.WritePCAP(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.pcapOut)
	}
	if o.feedsDir != "" {
		if err := os.MkdirAll(o.feedsDir, 0o755); err != nil {
			return err
		}
		for class, ips := range res.Feeds {
			path := filepath.Join(o.feedsDir, class+".txt")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := labels.WriteFeed(f, ips); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d senders)\n", path, len(ips))
		}
	}
	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	if o.live != "" {
		if err := runLive(o.live, tr, o.speed, logf); err != nil {
			return err
		}
	}

	// Per-vantage live feeds: each @addr vantage streams its own view over
	// its own connection, concurrently — one failing feed does not stop its
	// peers, but the run reports every failure.
	var targets []vantageSpec
	for _, spec := range o.vantages {
		if spec.addr != "" {
			targets = append(targets, spec)
		}
	}
	if len(targets) > 0 {
		blocks := make([]darksim.Vantage, len(o.vantages))
		for i, spec := range o.vantages {
			blocks[i] = spec.v
		}
		views := darksim.SplitVantages(tr, blocks)
		errs := make([]error, len(targets))
		var wg sync.WaitGroup
		for i, spec := range targets {
			wg.Add(1)
			go func(i int, spec vantageSpec) {
				defer wg.Done()
				view := views[spec.v.Name]
				if view.Len() == 0 {
					logf("vantage %s: nothing to stream", spec.v.Name)
					return
				}
				if err := runLive(spec.addr, view, o.speed, func(format string, args ...any) {
					logf("vantage "+spec.v.Name+": "+format, args...)
				}); err != nil {
					errs[i] = fmt.Errorf("vantage %s: %w", spec.v.Name, err)
				}
			}(i, spec)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}
