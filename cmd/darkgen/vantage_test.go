package main

import (
	"path/filepath"
	"testing"

	"github.com/darkvec/darkvec/internal/darksim"
	"github.com/darkvec/darkvec/internal/netutil"
	"github.com/darkvec/darkvec/internal/trace"
)

func TestVantageSpecFlagParsing(t *testing.T) {
	var specs vantageSpecs
	if err := specs.Set("north=198.18.0.0/26"); err != nil {
		t.Fatal(err)
	}
	if err := specs.Set("south=198.18.0.64/26@127.0.0.1:9002"); err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs", len(specs))
	}
	if specs[0].addr != "" || specs[1].addr != "127.0.0.1:9002" {
		t.Fatalf("addrs = %q, %q", specs[0].addr, specs[1].addr)
	}
	if specs[1].v.Block != netutil.MustParseSubnet("198.18.0.64/26") {
		t.Fatalf("south block = %s", specs[1].v.Block)
	}
	if got := specs.String(); got != "north=198.18.0.0/26,south=198.18.0.64/26@127.0.0.1:9002" {
		t.Fatalf("String() = %q", got)
	}

	for _, bad := range []string{
		"",                      // empty
		"north",                 // no =
		"north=",                // no cidr
		"=198.18.0.0/26",        // no name
		"north=not-a-cidr",      // bad cidr
		"north=198.18.0.128/26", // duplicate name
	} {
		if err := specs.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}

// TestRunTagsVantages: a -vantage run writes a trace where every event is
// tagged with the vantage monitoring its destination, and traffic aimed at
// unmonitored space is gone.
func TestRunTagsVantages(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.csv")
	tagged := filepath.Join(dir, "tagged.csv")
	base := options{out: full, days: 2, scale: 0.005, rate: 0.05, seed: 3}
	if err := run(base); err != nil {
		t.Fatal(err)
	}
	vant := base
	vant.out = tagged
	vant.vantages = []vantageSpec{
		{v: darksim.Vantage{Name: "north", Block: netutil.MustParseSubnet("198.18.0.0/26")}},
		{v: darksim.Vantage{Name: "south", Block: netutil.MustParseSubnet("198.18.0.64/26")}},
	}
	if err := run(vant); err != nil {
		t.Fatal(err)
	}

	all, view := readTrace(t, full), readTrace(t, tagged)
	if view.Len() == 0 || view.Len() >= all.Len() {
		t.Fatalf("tagged view holds %d of %d events; unmonitored space not dropped", view.Len(), all.Len())
	}
	blocks := map[string]netutil.Subnet{
		"north": vant.vantages[0].v.Block,
		"south": vant.vantages[1].v.Block,
	}
	for _, e := range view.Events {
		block, ok := blocks[e.Vantage]
		if !ok {
			t.Fatalf("event tagged %q, not a configured vantage", e.Vantage)
		}
		if !block.Contains(e.Dst) {
			t.Fatalf("event for %s tagged %s, outside its block %s", e.Dst, e.Vantage, block)
		}
	}
}

// TestRunStreamsPerVantage: @addr specs stream each vantage's view to its
// own listener — correct tag, correct block, nothing cross-delivered.
func TestRunStreamsPerVantage(t *testing.T) {
	northAddr, northLines := sink(t)
	southAddr, southLines := sink(t)
	o := options{days: 1, scale: 0.005, rate: 0.05, seed: 3}
	o.vantages = []vantageSpec{
		{v: darksim.Vantage{Name: "north", Block: netutil.MustParseSubnet("198.18.0.0/25")}, addr: northAddr},
		{v: darksim.Vantage{Name: "south", Block: netutil.MustParseSubnet("198.18.0.128/25")}, addr: southAddr},
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	check := func(lines <-chan string, want string) int {
		t.Helper()
		block := netutil.MustParseSubnet(map[string]string{
			"north": "198.18.0.0/25", "south": "198.18.0.128/25",
		}[want])
		n := 0
		for line := range lines {
			e, err := trace.ParseCSVLine(line)
			if err != nil {
				t.Fatalf("unparseable line %q: %v", line, err)
			}
			if e.Vantage != want || !block.Contains(e.Dst) {
				t.Fatalf("vantage %s received %q aimed at %s", want, e.Vantage, e.Dst)
			}
			n++
		}
		return n
	}
	if n := check(northLines, "north"); n == 0 {
		t.Fatal("north received nothing")
	}
	if n := check(southLines, "south"); n == 0 {
		t.Fatal("south received nothing")
	}
}

// TestRunVantageStreamFailure: a dead per-vantage target fails the run with
// the vantage named, after the healthy peer has been served.
func TestRunVantageStreamFailure(t *testing.T) {
	okAddr, okLines := sink(t)
	o := options{days: 1, scale: 0.005, rate: 0.05, seed: 3}
	o.vantages = []vantageSpec{
		{v: darksim.Vantage{Name: "north", Block: netutil.MustParseSubnet("198.18.0.0/25")}, addr: okAddr},
		{v: darksim.Vantage{Name: "south", Block: netutil.MustParseSubnet("198.18.0.128/25")}, addr: "127.0.0.1:1"},
	}
	err := run(o)
	if err == nil {
		t.Fatal("dead vantage target must fail the run")
	}
	n := 0
	for range okLines {
		n++
	}
	if n == 0 {
		t.Fatal("healthy vantage starved by its dead peer")
	}
}
