package main

import (
	"bufio"
	"net"
	"testing"
	"time"

	"github.com/darkvec/darkvec/internal/darksim"
	"github.com/darkvec/darkvec/internal/trace"
)

// sink collects protocol lines from one accepted connection.
func sink(t *testing.T) (addr string, lines <-chan string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	ch := make(chan string, 1<<16)
	go func() {
		defer close(ch)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		sc := bufio.NewScanner(conn)
		for sc.Scan() {
			ch <- sc.Text()
		}
	}()
	return ln.Addr().String(), ch
}

func TestRunLiveFirehose(t *testing.T) {
	res := darksim.Generate(darksim.Config{Seed: 3, Days: 1, Scale: 0.005, Rate: 0.05})
	addr, lines := sink(t)
	if err := runLive(addr, res.Trace, 0, t.Logf); err != nil {
		t.Fatal(err)
	}
	var got int
	for line := range lines {
		if _, err := trace.ParseCSVLine(line); err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		got++
	}
	if got != res.Trace.Len() {
		t.Fatalf("received %d lines, want %d", got, res.Trace.Len())
	}
}

func TestRunLivePacing(t *testing.T) {
	// 1 day of events at a day per 100ms: the replay must take measurable
	// wall time instead of firehosing.
	res := darksim.Generate(darksim.Config{Seed: 3, Days: 1, Scale: 0.005, Rate: 0.05})
	span := res.Trace.Events[res.Trace.Len()-1].Ts - res.Trace.Events[0].Ts
	if span <= 0 {
		t.Skip("degenerate trace span")
	}
	speed := float64(span) / 0.1 // full span in ~100ms of wall time
	addr, lines := sink(t)
	start := time.Now()
	if err := runLive(addr, res.Trace, speed, t.Logf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("replay finished in %v; pacing not applied", elapsed)
	}
	var got int
	for range lines {
		got++
	}
	if got != res.Trace.Len() {
		t.Fatalf("received %d lines, want %d", got, res.Trace.Len())
	}
}

func TestRunLiveDialFailure(t *testing.T) {
	res := darksim.Generate(darksim.Config{Seed: 1, Days: 1, Scale: 0.005, Rate: 0.05})
	if err := runLive("127.0.0.1:1", res.Trace, 0, t.Logf); err == nil {
		t.Fatal("dial to a closed port must fail")
	}
}
